package dist

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/combin"
)

// DeltaStats counts the work a VolumeTable's delta updates performed.
type DeltaStats struct {
	// Updates is the number of SetCoord calls that re-propagated the
	// table.
	Updates uint64
	// Subsets is the number of subset cells re-propagated across those
	// updates (2^(n-1) per update — only the subsets containing the
	// changed coordinate).
	Subsets uint64
}

// VolumeTable is a reusable AllSubsetVolumes: it owns every table the
// computation needs, so Build reuses the allocated storage across calls
// (zero steady-state allocations) and SetCoord re-propagates only the
// 2^(n-1) subsets containing the changed coordinate instead of rebuilding
// all n·2^n cells.
//
// Build is bit-identical to AllSubsetVolumes (same operations in the same
// order). SetCoord tracks a fresh rebuild within the evaluators'
// ExactErrorBound rather than bit-exactly: the subset-sum and radix state
// is re-propagated with the exact build recurrence (so it never drifts),
// but the per-exponent volume contributions are applied as additive
// corrections
//
//	Δ vol[T] = Σ_{I ⊆ T, I ∋ i} (p_new[I] − p_old[I]),   T ∋ i,
//
// computed by two signed power ladders over the compressed 2^(n-1)-subset
// lattice of the other n-1 coordinates followed by one sum-over-subsets
// (zeta) pass restricted to that lattice — O(n·2^(n-1)) per update against
// O(n²·2^n) for a rebuild — which rounds each touched cell once per
// update.
type VolumeTable struct {
	n      int
	t      float64
	built  bool
	widths []float64
	sums   []float64 // subset sums of widths (exact build-recurrence bits)
	radix  []float64 // t − sums, maintained alongside
	p      []float64 // signed power ladder, build scratch
	zeta   []float64 // zeta-pass scratch
	raw    []float64 // unclamped per-cardinality readoffs
	vol    []float64 // clamped volumes

	// SetCoord scratch over the compressed (n-1)-bit lattice.
	ro, rn, lo, ln, d []float64

	stats DeltaStats
}

// NewVolumeTable allocates a volume table for n coordinates.
func NewVolumeTable(n int) (*VolumeTable, error) {
	if n < 1 || n > combin.MaxSubsetTable {
		return nil, fmt.Errorf("dist: volume table dimension %d out of range [1, %d]", n, combin.MaxSubsetTable)
	}
	size := uint64(1) << uint(n)
	half := size / 2
	return &VolumeTable{
		n:      n,
		widths: make([]float64, n),
		sums:   make([]float64, size),
		radix:  make([]float64, size),
		p:      make([]float64, size),
		zeta:   make([]float64, size),
		raw:    make([]float64, size),
		vol:    make([]float64, size),
		ro:     make([]float64, half),
		rn:     make([]float64, half),
		lo:     make([]float64, half),
		ln:     make([]float64, half),
		d:      make([]float64, half),
	}, nil
}

// N returns the table's dimension.
func (v *VolumeTable) N() int { return v.n }

// Threshold returns the shared threshold t of the last Build.
func (v *VolumeTable) Threshold() float64 { return v.t }

// Vol returns the clamped volume table, indexed by subset mask. The slice
// is owned by the table and rewritten by Build and SetCoord; callers must
// not modify it.
func (v *VolumeTable) Vol() []float64 { return v.vol }

// Widths returns the current width vector. The slice is owned by the
// table; callers must not modify it.
func (v *VolumeTable) Widths() []float64 { return v.widths }

// Stats returns the delta-update counters accumulated since New.
func (v *VolumeTable) Stats() DeltaStats { return v.stats }

func checkWidth(i int, w float64) error {
	if math.IsNaN(w) || w < 0 || math.IsInf(w, 1) {
		return fmt.Errorf("dist: width %d = %v must be finite and non-negative", i, w)
	}
	return nil
}

// Build fills the table for (widths, t), reusing the allocated storage.
// The volumes are bit-identical to AllSubsetVolumes(widths, t, workers):
// same validation, same signed-power-ladder/zeta pass structure, same
// clamping. workers shards the zeta passes (≤ 1 serial); every worker
// count produces the same bits.
func (v *VolumeTable) Build(widths []float64, t float64, workers int) error {
	if len(widths) != v.n {
		return fmt.Errorf("dist: volume table built for %d coordinates, got %d", v.n, len(widths))
	}
	for i, w := range widths {
		if err := checkWidth(i, w); err != nil {
			return err
		}
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("dist: subset-volume threshold %v must be finite", t)
	}
	copy(v.widths, widths)
	v.t = t
	size := uint64(1) << uint(v.n)
	for mask := range v.vol {
		v.vol[mask] = 0
		v.raw[mask] = 0
	}
	if t >= 0 {
		v.vol[0] = 1
		v.raw[0] = 1
	}
	// Subset sums by the exact low-bit build recurrence, then the radix
	// t − σ_I and the signed base table, exactly as AllSubsetVolumes.
	sums, radix, p := v.sums, v.radix, v.p
	sums[0] = 0
	for mask := uint64(1); mask < size; mask++ {
		sums[mask] = sums[mask&(mask-1)] + v.widths[bits.TrailingZeros64(mask)]
	}
	for mask := uint64(0); mask < size; mask++ {
		r := t - sums[mask]
		radix[mask] = r
		if r > 0 {
			if bits.OnesCount64(mask)%2 == 1 {
				p[mask] = -1
			} else {
				p[mask] = 1
			}
		} else {
			p[mask] = 0
		}
	}
	for m := 1; m <= v.n; m++ {
		invM := 1 / float64(m)
		for mask := uint64(0); mask < size; mask++ {
			pv := p[mask] * radix[mask] * invM
			p[mask] = pv
			v.zeta[mask] = pv
		}
		if err := combin.SumOverSubsets(v.zeta, v.n, workers); err != nil {
			return err
		}
		for mask := uint64(0); mask < size; mask++ {
			if bits.OnesCount64(mask) != m {
				continue
			}
			val := v.zeta[mask]
			v.raw[mask] = val
			if val < 0 {
				val = 0
			}
			v.vol[mask] = val
		}
	}
	v.built = true
	return nil
}

// SetCoord changes width i to w and re-propagates the 2^(n-1) subsets
// containing i: the subset-sum and radix entries are recomputed with the
// exact build recurrence, and each touched volume receives the zeta-summed
// difference of its signed base terms under the old and new radix. The
// updated table agrees with a fresh Build within the evaluators'
// ExactErrorBound (property-tested along random coordinate walks). Cost is
// O(n·2^(n-1)) against O(n²·2^n) for a rebuild.
func (v *VolumeTable) SetCoord(i int, w float64) error {
	if !v.built {
		return fmt.Errorf("dist: volume table used before Build")
	}
	if i < 0 || i >= v.n {
		return fmt.Errorf("dist: volume table coordinate %d out of range [0, %d)", i, v.n)
	}
	if err := checkWidth(i, w); err != nil {
		return err
	}
	if w == v.widths[i] {
		return nil
	}
	bit := uint64(1) << uint(i)
	lowMask := bit - 1
	half := uint64(1) << uint(v.n-1)
	// Old radix of every subset containing i, gathered onto the
	// compressed lattice of the other n-1 coordinates.
	for j := uint64(0); j < half; j++ {
		full := (j & lowMask) | (j&^lowMask)<<1 | bit
		v.ro[j] = v.radix[full]
	}
	// Exact state update: re-propagate sums with the build recurrence
	// (bit-identical to a fresh subset-sum pass — the recurrence parent of
	// a mask containing i either excludes i and is unchanged, or contains
	// i and was already updated), refresh the radix, gather its new
	// values.
	v.widths[i] = w
	size := uint64(1) << uint(v.n)
	for mask := bit; mask < size; mask++ {
		if mask&bit == 0 {
			continue
		}
		v.sums[mask] = v.sums[mask&(mask-1)] + v.widths[bits.TrailingZeros64(mask)]
		v.radix[mask] = v.t - v.sums[mask]
	}
	for j := uint64(0); j < half; j++ {
		full := (j & lowMask) | (j&^lowMask)<<1 | bit
		v.rn[j] = v.radix[full]
	}
	// Signed power ladders for the old and new base terms of the subsets
	// I = J ∪ {i}: sign (−1)^(|J|+1), power m of the radix, mirroring the
	// Build ladder update p ← p·radix/m.
	for j := uint64(0); j < half; j++ {
		var sign float64
		if bits.OnesCount64(j)%2 == 0 {
			sign = -1 // |J ∪ {i}| odd
		} else {
			sign = 1
		}
		if v.ro[j] > 0 {
			v.lo[j] = sign
		} else {
			v.lo[j] = 0
		}
		if v.rn[j] > 0 {
			v.ln[j] = sign
		} else {
			v.ln[j] = 0
		}
	}
	for m := 1; m <= v.n; m++ {
		invM := 1 / float64(m)
		for j := uint64(0); j < half; j++ {
			v.lo[j] *= v.ro[j] * invM
			v.ln[j] *= v.rn[j] * invM
			v.d[j] = v.ln[j] - v.lo[j]
		}
		// Zeta pass restricted to the changed coordinate: summing d over
		// the compressed lattice accumulates Σ_{I⊆T, I∋i} Δp[I] for every
		// T ∋ i at once.
		if err := combin.SumOverSubsets(v.d, v.n-1, 1); err != nil {
			return err
		}
		for j := uint64(0); j < half; j++ {
			if bits.OnesCount64(j) != m-1 {
				continue
			}
			full := (j & lowMask) | (j&^lowMask)<<1 | bit
			nr := v.raw[full] + v.d[j]
			v.raw[full] = nr
			if nr < 0 {
				nr = 0
			}
			v.vol[full] = nr
		}
	}
	v.stats.Updates++
	v.stats.Subsets += half
	return nil
}
