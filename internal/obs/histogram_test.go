package obs

import "testing"

// TestHistogramBucketEdges pins the edge semantics shared with
// internal/stats.Histogram: below-range counts as Under, x == Lo lands in
// the first bucket, x == Hi lands in the last bucket, above-range counts
// as Over.
func TestHistogramBucketEdges(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x      float64
		bucket int // -1 under, -2 over
	}{
		{-0.001, -1},
		{0, 0},
		{0.2499, 0},
		{0.25, 1},
		{0.5, 2},
		{0.74999, 2},
		{0.75, 3},
		{0.99999, 3},
		{1, 3}, // x == Hi goes in the last bucket, matching stats.Histogram
		{1.0001, -2},
	}
	for _, c := range cases {
		h.Observe(c.x)
	}
	want := make([]int64, 4)
	var under, over int64
	for _, c := range cases {
		switch c.bucket {
		case -1:
			under++
		case -2:
			over++
		default:
			want[c.bucket]++
		}
	}
	s := h.Stats()
	if s.Under != under || s.Over != over {
		t.Errorf("under/over = %d/%d, want %d/%d", s.Under, s.Over, under, over)
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if h.Total() != int64(len(cases))-under-over {
		t.Errorf("total = %d, want %d", h.Total(), int64(len(cases))-under-over)
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	reg := NewRegistry()
	if _, err := reg.Histogram("bad", 2, 1, 3); err == nil {
		t.Error("registry accepted inverted range")
	}
}
