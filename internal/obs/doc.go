// Package obs is the reproduction's dependency-free observability layer:
// a concurrency-safe metrics registry (counters, gauges, timers and
// fixed-bucket histograms with the same edge semantics as
// internal/stats.Histogram), a lightweight span/trace API for nested
// phases (simulate → worker[i] → batch), and a structured JSONL event
// sink with pluggable writers.
//
// Instrumented code receives an *Observer; a nil Observer (and every
// object it hands out) is a no-op, so hot paths pay only a nil check when
// observability is disabled. The CLIs wire an Observer from the global
// -obs / -metrics flags, and `nocomm metrics run.jsonl` replays a recorded
// event log into a human-readable summary via Summarize.
//
// The package deliberately imports nothing outside the standard library so
// every other package in the module can depend on it.
package obs
