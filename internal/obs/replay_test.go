package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpanNestingAndRoundTrip drives the full pipeline the `nocomm
// metrics` subcommand relies on: spans and checkpoints emitted through a
// JSONL sink, parsed back with ReadEvents, digested by Summarize, and
// rendered.
func TestSpanNestingAndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	o := New(reg, NewSink(&buf))

	root := o.StartSpan("experiment.T2")
	child := root.Child("sim.run")
	for i := 1; i <= 12; i++ {
		o.Emit(Event{
			Type: EventCheckpoint,
			Name: "sim.convergence",
			Attrs: map[string]float64{
				"trials":   float64(i * 1000),
				"estimate": 0.6 + 0.001*float64(i),
				"ci_lo":    0.59,
				"ci_hi":    0.63,
			},
		})
	}
	grand := child.Child("worker.batch")
	grand.End()
	child.End()
	root.End()
	o.Counter("sim.trials").Add(12000)
	o.EmitSnapshot()
	if err := o.Events.Err(); err != nil {
		t.Fatal(err)
	}

	// Append garbage: replay must skip it, not fail.
	buf.WriteString("not json at all\n{\"t\": trunca")

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(events)
	if sum.OpenSpans != 0 {
		t.Errorf("open spans = %d, want 0", sum.OpenSpans)
	}
	wantDepth := map[string]int{"experiment.T2": 0, "sim.run": 1, "worker.batch": 2}
	found := map[string]bool{}
	for _, s := range sum.Spans {
		found[s.Name] = true
		if d, ok := wantDepth[s.Name]; !ok || d != s.Depth {
			t.Errorf("span %s depth = %d, want %d", s.Name, s.Depth, wantDepth[s.Name])
		}
		if s.Count != 1 {
			t.Errorf("span %s count = %d, want 1", s.Name, s.Count)
		}
	}
	for name := range wantDepth {
		if !found[name] {
			t.Errorf("span %s missing from summary", name)
		}
	}
	if len(sum.Checkpoints) != 1 || len(sum.Checkpoints[0].Points) != 12 {
		t.Fatalf("checkpoint stream wrong: %+v", sum.Checkpoints)
	}
	if sum.Final == nil || sum.Final.Counters["sim.trials"] != 12000 {
		t.Errorf("final snapshot lost: %+v", sum.Final)
	}

	text := sum.Render()
	for _, want := range []string{
		"convergence trace sim.convergence: 12 checkpoints",
		"experiment.T2",
		"  sim.run",        // depth-1 indentation
		"    worker.batch", // depth-2 indentation
		"sim.trials",
		"12000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered summary missing %q:\n%s", want, text)
		}
	}
	// The span timers must have been fed as well.
	if reg.Timer("span.sim.run").Stats().Count != 1 {
		t.Error("span timer not recorded")
	}
}

// TestSummarizeTruncatedRun checks that a log with an unterminated span is
// reported rather than miscounted.
func TestSummarizeTruncatedRun(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewRegistry(), NewSink(&buf))
	o.StartSpan("sim.run") // never ended
	o.EmitError("sim.trial", bytes.ErrTooLarge)
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(events)
	if sum.OpenSpans != 1 {
		t.Errorf("open spans = %d, want 1", sum.OpenSpans)
	}
	if len(sum.Errors) != 1 {
		t.Fatalf("errors = %d, want 1", len(sum.Errors))
	}
	if !strings.Contains(sum.Render(), "never ended") {
		t.Error("truncated-run warning missing")
	}
	if o.Counter("errors.sim.trial").Value() != 1 {
		t.Error("error counter not bumped")
	}
}
