package obs

import "context"

// Span-context propagation: a *Span rides a context.Context so layered
// code (HTTP handler → engine → backend) can parent its spans without
// threading span arguments through every signature. A context without a
// span — or a nil span — degrades to the usual nil-safe no-ops, so
// instrumented code never branches on observability being enabled.

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span returns
// ctx unchanged, so disabled observers propagate nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpanCtx opens a span as a child of the span carried by ctx (or as
// a root span when ctx carries none) and returns it together with a
// derived context carrying the new span. A nil observer returns a nil
// span and ctx unchanged.
func (o *Observer) StartSpanCtx(ctx context.Context, name string) (*Span, context.Context) {
	if o == nil {
		return nil, ctx
	}
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = parent.Child(name)
	} else {
		s = o.StartSpan(name)
	}
	return s, ContextWithSpan(ctx, s)
}
