package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// promFixture builds a registry with one metric of every kind, fully
// deterministic, covering the exposition's edge cases: registered and
// fallback HELP texts, a histogram with under/over-range observations,
// and a timer summary.
func promFixture(t *testing.T) Snapshot {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("http.requests.total").Add(42)
	reg.Counter("engine.cache.hits").Add(7)
	reg.SetHelp("http.requests.total", "Total HTTP requests served.")
	reg.Gauge("http.inflight").Set(3)
	reg.Gauge("runtime.goroutines").Set(12)
	reg.SetHelp("runtime.goroutines", "Current goroutine count.")
	reg.Timer("span.http.eval").Observe(250 * time.Millisecond)
	reg.Timer("span.http.eval").Observe(750 * time.Millisecond)
	h, err := reg.Histogram("http.latency.eval", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetHelp("http.latency.eval", "Latency of /v1/eval in seconds.")
	h.Observe(0.6)
	h.Observe(0.6)
	h.Observe(0.1)
	h.Observe(-0.25) // under: folds into the first bucket
	h.Observe(2.5)   // over: only in +Inf
	return reg.Snapshot()
}

// TestWritePrometheusGolden pins the exposition byte-for-byte: HELP/TYPE
// lines per family, cumulative buckets, histogram _sum/_count, timer
// summaries. Any format drift must re-capture the golden deliberately
// (go test ./internal/obs -run Golden -update-golden).
func TestWritePrometheusGolden(t *testing.T) {
	snap := promFixture(t)
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("prometheus exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestHistogramSum checks the `_sum` accumulator, including out-of-range
// observations (Prometheus sums every observation, bucketed or not).
func TestHistogramSum(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.25, 0.75, -1, 3} {
		h.Observe(x)
	}
	if got, want := h.Stats().Sum, 3.0; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}
