package obs

import (
	"runtime"
	"time"
)

// CollectRuntime samples the Go runtime into the observer's gauges:
// goroutine count, heap sizes and object count, cumulative GC runs and
// pause time, and the GC CPU fraction. It is a one-shot sample — a
// /metrics handler calls it right before snapshotting so scrapes always
// see fresh values; StartRuntimeCollector wraps it in a background
// ticker. A nil observer is a no-op.
func CollectRuntime(o *Observer) {
	if o == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	o.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	o.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
	o.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	o.Gauge("runtime.stack_sys_bytes").Set(float64(ms.StackSys))
	o.Gauge("runtime.gc_runs_total").Set(float64(ms.NumGC))
	o.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	o.Gauge("runtime.gc_cpu_fraction").Set(ms.GCCPUFraction)
	o.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
}

// StartRuntimeCollector samples CollectRuntime every interval until the
// returned stop function is called (stop blocks until the collector
// goroutine has exited, so tests and shutdown paths can rely on no
// further gauge writes). A non-positive interval defaults to 10s; a nil
// observer returns a no-op stop.
func StartRuntimeCollector(o *Observer, interval time.Duration) (stop func()) {
	if o == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	CollectRuntime(o)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				CollectRuntime(o)
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
