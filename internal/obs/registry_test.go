package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race this verifies the create-or-get paths and all four metric
// kinds are safe for concurrent use.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared.count").Inc()
				reg.Gauge("shared.gauge").Set(float64(i))
				reg.Timer("shared.timer").Observe(time.Microsecond)
				h, err := reg.Histogram("shared.hist", 0, 1, 10)
				if err != nil {
					t.Error(err)
					return
				}
				h.Observe(float64(i%perG) / perG)
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("shared.count").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Timer("shared.timer").Stats().Count; got != goroutines*perG {
		t.Errorf("timer count = %d, want %d", got, goroutines*perG)
	}
	h, err := reg.Histogram("shared.hist", 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); got != goroutines*perG {
		t.Errorf("histogram total = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotJSONAndPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.trials").Add(1000)
	reg.Counter("sim.wins").Add(618)
	reg.Gauge("sim.worker.0.trials_per_sec").Set(123456)
	reg.Timer("span.sim.run").Observe(250 * time.Millisecond)
	h, err := reg.Histogram("sim.estimate", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.6)

	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["sim.trials"] != 1000 || decoded.Counters["sim.wins"] != 618 {
		t.Errorf("counters lost in JSON round-trip: %+v", decoded.Counters)
	}
	if decoded.Timers["span.sim.run"].Count != 1 {
		t.Errorf("timer lost in JSON round-trip: %+v", decoded.Timers)
	}

	buf.Reset()
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"sim_trials 1000",
		"sim_wins 618",
		"sim_worker_0_trials_per_sec 123456",
		"span_sim_run_seconds_count 1",
		"sim_estimate_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

// TestNilSafety verifies the disabled path: a nil observer and everything
// it hands out must be inert, never panic.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer reports enabled")
	}
	o.Counter("x").Add(5)
	o.Gauge("x").Set(1)
	o.Timer("x").Observe(time.Second)
	o.Histogram("x", 0, 1, 4).Observe(0.5)
	o.Emit(Event{Type: EventMetric})
	o.EmitSnapshot()
	sp := o.StartSpan("root")
	sp.Child("inner").End()
	sp.End()
	if sp.Name() != "" {
		t.Error("nil span has a name")
	}
	var reg *Registry
	reg.Counter("x").Inc()
	if got := reg.Snapshot(); len(got.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var sink *Sink
	sink.Emit(Event{})
	if sink.Err() != nil {
		t.Error("nil sink reports error")
	}
	if New(nil, nil) != nil {
		t.Error("New(nil, nil) should return a nil (disabled) observer")
	}
}
