package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram bins observations into equal-width buckets over [lo, hi],
// counting out-of-range values in Under/Over. It mirrors the bucket-edge
// semantics of internal/stats.Histogram — values below Lo count as Under,
// values equal to Hi land in the last bucket, values above Hi count as
// Over — but is safe for concurrent Observe calls. A nil *Histogram is a
// no-op.
type Histogram struct {
	lo, hi  float64
	counts  []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given number of buckets. It
// returns an error for invalid bounds or bucket counts.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("obs: invalid histogram range [%v, %v]", lo, hi)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("obs: bucket count %d must be positive", buckets)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]atomic.Int64, buckets)}, nil
}

// addSum folds x into the running sum of observed values (the Prometheus
// histogram's `_sum` series) with a CAS loop, keeping Observe lock-free.
func (h *Histogram) addSum(x float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.addSum(x)
	switch {
	case x < h.lo:
		h.under.Add(1)
	case x >= h.hi:
		if x == h.hi {
			h.counts[len(h.counts)-1].Add(1)
			return
		}
		h.over.Add(1)
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
		h.counts[idx].Add(1)
	}
}

// HistogramStats is a point-in-time copy of a histogram.
type HistogramStats struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under,omitempty"`
	Over   int64   `json:"over,omitempty"`
	// Sum is the sum of every observed value (including out-of-range
	// observations), the Prometheus `_sum` series.
	Sum float64 `json:"sum,omitempty"`
}

// Stats returns a snapshot of the histogram's counts.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	s := HistogramStats{Lo: h.lo, Hi: h.hi, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Under = h.under.Load()
	s.Over = h.over.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}
