package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. A nil *Counter is a no-op,
// so call sites never need to guard on observability being enabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates durations: count, total, min and max. A nil *Timer is
// a no-op.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if t.count == 0 || d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and records its wall time.
func (t *Timer) Time(fn func()) {
	if t == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a point-in-time copy of a Timer's accumulators.
type TimerStats struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Stats returns a snapshot of the timer.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimerStats{
		Count:        t.count,
		TotalSeconds: t.total.Seconds(),
		MinSeconds:   t.min.Seconds(),
		MaxSeconds:   t.max.Seconds(),
	}
}

// Registry is a concurrency-safe collection of named metrics. The zero
// value is not usable; construct with NewRegistry. A nil *Registry hands
// out nil metrics, which are themselves no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// SetHelp records the metric's `# HELP` text for the Prometheus
// exposition. Metrics without registered help fall back to their dotted
// source name, so exposition is always well-formed.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use with the
// given range and bucket count. The shape arguments only apply on creation;
// later calls return the existing histogram regardless of shape.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h != nil {
		return h, nil
	}
	h, err := NewHistogram(lo, hi, buckets)
	if err != nil {
		return nil, fmt.Errorf("obs: histogram %q: %w", name, err)
	}
	r.histograms[name] = h
	return h, nil
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Timers     map[string]TimerStats     `json:"timers,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	// Help carries the registered `# HELP` texts (SetHelp) for the
	// Prometheus exposition; metrics without an entry fall back to their
	// dotted source name.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStats{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Stats()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Stats()
	}
	if len(r.help) > 0 {
		s.Help = make(map[string]string, len(r.help))
		for name, help := range r.help {
			s.Help[name] = help
		}
	}
	return s
}

// WriteJSON writes the snapshot as one indented JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus exposition
// grammar: dots and other invalid runes become underscores.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promHelp escapes a `# HELP` text per the exposition format (backslash
// and newline are the only escaped runes).
func promHelp(text string) string {
	text = strings.ReplaceAll(text, `\`, `\\`)
	return strings.ReplaceAll(text, "\n", `\n`)
}

// helpFor resolves a metric's HELP text: the registered text when
// present, the dotted source name otherwise (never empty, so every
// family carries a well-formed HELP line).
func (s Snapshot) helpFor(name string) string {
	if h, ok := s.Help[name]; ok && h != "" {
		return promHelp(h)
	}
	return promHelp(name)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, sanitizing dotted names (sim.trials → sim_trials). Every metric
// family gets `# HELP` and `# TYPE` lines (help text via Registry.SetHelp,
// falling back to the dotted name); timers export as summaries with
// `_seconds_count`/`_seconds_sum`, and histograms export cumulative
// `_bucket{le="..."}` series (out-of-range lows fold into the first
// bucket, highs into `+Inf`) plus `_sum` and `_count`.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			p, s.helpFor(name), p, p, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			p, s.helpFor(name), p, p, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		p := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n%s_count %d\n%s_sum %g\n",
			p, s.helpFor(name), p, p, t.Count, p, t.TotalSeconds); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", p, s.helpFor(name), p); err != nil {
			return err
		}
		width := (h.Hi - h.Lo) / float64(len(h.Counts))
		cum := h.Under
		for i, c := range h.Counts {
			cum += c
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, fmt.Sprintf("%g", h.Lo+width*float64(i+1)), cum); err != nil {
				return err
			}
		}
		total := cum + h.Over
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			p, total, p, h.Sum, p, total); err != nil {
			return err
		}
	}
	return nil
}
