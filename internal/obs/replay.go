package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanSummary aggregates every completed span with one name at one
// nesting depth.
type SpanSummary struct {
	Name         string
	Depth        int
	Count        int64
	TotalSeconds float64
}

// CheckpointStream is the ordered list of checkpoint events with one name
// (e.g. the sim.convergence trace).
type CheckpointStream struct {
	Name   string
	Points []Event
}

// RunSummary is the digest of a replayed JSONL run log.
type RunSummary struct {
	// Events is the total number of parsed events.
	Events int
	// StartNS and EndNS bound the log's timestamps (Unix nanoseconds).
	StartNS, EndNS int64
	// Spans aggregates completed spans in first-seen order.
	Spans []SpanSummary
	// OpenSpans counts span_start events with no matching span_end
	// (a crashed or truncated run).
	OpenSpans int
	// Checkpoints holds every checkpoint stream in first-seen order.
	Checkpoints []CheckpointStream
	// Errors holds the error events in log order.
	Errors []Event
	// Final is the last metrics snapshot in the log, if any.
	Final *Snapshot
}

// Summarize digests a parsed run log: span durations by name and depth,
// checkpoint streams, error events, and the final metrics snapshot.
func Summarize(events []Event) *RunSummary {
	sum := &RunSummary{Events: len(events)}
	type spanKey struct {
		name  string
		depth int
	}
	depthOf := map[int64]int{}  // span id → depth
	open := map[int64]spanKey{} // span id → aggregation key
	agg := map[spanKey]int{}    // key → index into sum.Spans
	streams := map[string]int{} // checkpoint name → index into sum.Checkpoints
	for _, ev := range events {
		if ev.TimeNS != 0 {
			if sum.StartNS == 0 || ev.TimeNS < sum.StartNS {
				sum.StartNS = ev.TimeNS
			}
			if ev.TimeNS > sum.EndNS {
				sum.EndNS = ev.TimeNS
			}
		}
		switch ev.Type {
		case EventSpanStart:
			depth := 0
			if d, ok := depthOf[ev.Parent]; ok && ev.Parent != 0 {
				depth = d + 1
			}
			depthOf[ev.Span] = depth
			key := spanKey{name: ev.Name, depth: depth}
			open[ev.Span] = key
			if _, ok := agg[key]; !ok {
				agg[key] = len(sum.Spans)
				sum.Spans = append(sum.Spans, SpanSummary{Name: ev.Name, Depth: depth})
			}
		case EventSpanEnd:
			key, ok := open[ev.Span]
			if !ok {
				key = spanKey{name: ev.Name}
				if _, seen := agg[key]; !seen {
					agg[key] = len(sum.Spans)
					sum.Spans = append(sum.Spans, SpanSummary{Name: ev.Name})
				}
			}
			delete(open, ev.Span)
			s := &sum.Spans[agg[key]]
			s.Count++
			s.TotalSeconds += ev.Attrs["seconds"]
		case EventCheckpoint:
			i, ok := streams[ev.Name]
			if !ok {
				i = len(sum.Checkpoints)
				streams[ev.Name] = i
				sum.Checkpoints = append(sum.Checkpoints, CheckpointStream{Name: ev.Name})
			}
			sum.Checkpoints[i].Points = append(sum.Checkpoints[i].Points, ev)
		case EventError:
			sum.Errors = append(sum.Errors, ev)
		case EventSnapshot:
			if ev.Metrics != nil {
				sum.Final = ev.Metrics
			}
		}
	}
	sum.OpenSpans = len(open)
	return sum
}

// attrColumns orders a checkpoint stream's attribute keys for display:
// trials and wins lead (when present), the rest follow alphabetically.
func attrColumns(points []Event) []string {
	seen := map[string]bool{}
	for _, p := range points {
		for k := range p.Attrs {
			seen[k] = true
		}
	}
	lead := []string{"trials", "wins", "estimate", "ci_lo", "ci_hi"}
	var cols []string
	for _, k := range lead {
		if seen[k] {
			cols = append(cols, k)
			delete(seen, k)
		}
	}
	rest := make([]string, 0, len(seen))
	for k := range seen {
		rest = append(rest, k)
	}
	sort.Strings(rest)
	return append(cols, rest...)
}

func formatAttr(col string, v float64) string {
	if col == "trials" || col == "wins" || v == float64(int64(v)) && v >= 1000 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

func renderGrid(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	total := 2 * (len(header) - 1)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
}

// Render formats the summary as human-readable text: a span table, the
// final metric values, each convergence trace, and any recorded errors.
func (sum *RunSummary) Render() string {
	var b strings.Builder
	wall := time.Duration(sum.EndNS - sum.StartNS)
	fmt.Fprintf(&b, "run log: %d events, wall %.3fs\n", sum.Events, wall.Seconds())
	if sum.OpenSpans > 0 {
		fmt.Fprintf(&b, "warning: %d span(s) never ended (truncated run?)\n", sum.OpenSpans)
	}

	if len(sum.Spans) > 0 {
		b.WriteString("\nspans:\n")
		rows := make([][]string, 0, len(sum.Spans))
		for _, s := range sum.Spans {
			mean := 0.0
			if s.Count > 0 {
				mean = s.TotalSeconds / float64(s.Count)
			}
			rows = append(rows, []string{
				strings.Repeat("  ", s.Depth) + s.Name,
				fmt.Sprintf("%d", s.Count),
				fmt.Sprintf("%.4f", s.TotalSeconds),
				fmt.Sprintf("%.4f", mean),
			})
		}
		renderGrid(&b, []string{"span", "count", "total(s)", "mean(s)"}, rows)
	}

	if sum.Final != nil {
		if len(sum.Final.Counters) > 0 {
			b.WriteString("\ncounters:\n")
			for _, name := range sortedKeys(sum.Final.Counters) {
				fmt.Fprintf(&b, "  %-36s %d\n", name, sum.Final.Counters[name])
			}
		}
		if len(sum.Final.Gauges) > 0 {
			b.WriteString("\ngauges:\n")
			for _, name := range sortedKeys(sum.Final.Gauges) {
				fmt.Fprintf(&b, "  %-36s %g\n", name, sum.Final.Gauges[name])
			}
		}
	}

	for _, cs := range sum.Checkpoints {
		fmt.Fprintf(&b, "\nconvergence trace %s: %d checkpoints\n", cs.Name, len(cs.Points))
		cols := attrColumns(cs.Points)
		rows := make([][]string, 0, len(cs.Points))
		for _, p := range cs.Points {
			row := make([]string, len(cols))
			for i, c := range cols {
				row[i] = formatAttr(c, p.Attrs[c])
			}
			rows = append(rows, row)
		}
		renderGrid(&b, cols, rows)
	}

	if len(sum.Errors) > 0 {
		fmt.Fprintf(&b, "\nerrors: %d\n", len(sum.Errors))
		for _, e := range sum.Errors {
			fmt.Fprintf(&b, "  %s: %s\n", e.Name, e.Msg)
		}
	}
	return b.String()
}
