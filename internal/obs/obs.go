package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer is the handle instrumented code receives: a metrics registry, an
// event sink, and a span factory. Either half may be nil — metrics-only and
// trace-only observers both work — and a nil *Observer disables everything,
// so hot paths guard with a single nil check (or none at all, since every
// object an Observer hands out is itself nil-safe).
type Observer struct {
	// Metrics is the metric registry (nil = no metrics).
	Metrics *Registry
	// Events is the structured event sink (nil = no event log).
	Events *Sink

	spanID atomic.Int64
}

// New builds an observer over a registry and a sink; either may be nil.
// New(nil, nil) returns nil — fully disabled.
func New(reg *Registry, sink *Sink) *Observer {
	if reg == nil && sink == nil {
		return nil
	}
	return &Observer{Metrics: reg, Events: sink}
}

// Enabled reports whether any instrumentation is active.
func (o *Observer) Enabled() bool { return o != nil }

// Counter returns the named counter (nil when disabled).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge (nil when disabled).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Timer returns the named timer (nil when disabled).
func (o *Observer) Timer(name string) *Timer {
	if o == nil {
		return nil
	}
	return o.Metrics.Timer(name)
}

// Histogram returns the named histogram, creating it with the given shape
// on first use (nil when disabled or on invalid shape).
func (o *Observer) Histogram(name string, lo, hi float64, buckets int) *Histogram {
	if o == nil {
		return nil
	}
	h, err := o.Metrics.Histogram(name, lo, hi, buckets)
	if err != nil {
		return nil
	}
	return h
}

// Emit appends one event to the sink, if any.
func (o *Observer) Emit(ev Event) {
	if o == nil {
		return
	}
	o.Events.Emit(ev)
}

// EmitError records an error event and bumps the errors.<name> counter.
func (o *Observer) EmitError(name string, err error) {
	if o == nil || err == nil {
		return
	}
	o.Counter("errors." + name).Inc()
	o.Events.Emit(Event{Type: EventError, Name: name, Msg: err.Error()})
}

// EmitSnapshot writes the registry's full current state into the event log
// so offline replay (nocomm metrics) can render final metric values.
func (o *Observer) EmitSnapshot() {
	if o == nil || o.Events == nil {
		return
	}
	snap := o.Metrics.Snapshot()
	o.Events.Emit(Event{Type: EventSnapshot, Name: "metrics", Metrics: &snap})
}

// Span is one timed phase in a trace. Spans nest: Child spans reference
// their parent's id in the event log, and ending a span records its wall
// time both as a span_end event and in the span.<name> timer. A nil *Span
// is a no-op.
type Span struct {
	obs    *Observer
	name   string
	id     int64
	parent int64
	start  time.Time

	mu     sync.Mutex
	attrs  map[string]float64
	fields map[string]string
}

// StartSpan opens a root span.
func (o *Observer) StartSpan(name string) *Span {
	return o.startSpan(name, 0)
}

func (o *Observer) startSpan(name string, parent int64) *Span {
	if o == nil {
		return nil
	}
	s := &Span{
		obs:    o,
		name:   name,
		id:     o.spanID.Add(1),
		parent: parent,
		start:  time.Now(),
	}
	o.Events.Emit(Event{
		TimeNS: s.start.UnixNano(),
		Type:   EventSpanStart,
		Name:   name,
		Span:   s.id,
		Parent: parent,
	})
	return s
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.obs.startSpan(name, s.id)
}

// SetAttr annotates the span with a numeric attribute, emitted alongside
// the duration in the span_end event (e.g. cached=1, degraded=1). Safe for
// concurrent use; a nil span drops the annotation.
func (s *Span) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]float64)
	}
	s.attrs[key] = v
}

// SetField annotates the span with a string field, emitted in the
// span_end event (e.g. the request id or resolved backend). Safe for
// concurrent use; a nil span drops the annotation.
func (s *Span) SetField(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fields == nil {
		s.fields = make(map[string]string)
	}
	s.fields[key] = value
}

// ID returns the span's id (0 for nil), so out-of-band events (access
// logs) can reference the span they belong to.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span, emitting a span_end event (with the duration in
// seconds plus any SetAttr/SetField annotations) and feeding the
// span.<name> timer. End is idempotent only in the trivial sense that
// calling it on a nil span does nothing; do not end a span twice.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.obs.Timer("span." + s.name).Observe(d)
	s.mu.Lock()
	attrs := map[string]float64{"seconds": d.Seconds()}
	for k, v := range s.attrs {
		attrs[k] = v
	}
	var fields map[string]string
	if len(s.fields) > 0 {
		fields = make(map[string]string, len(s.fields))
		for k, v := range s.fields {
			fields[k] = v
		}
	}
	s.mu.Unlock()
	s.obs.Events.Emit(Event{
		Type:   EventSpanEnd,
		Name:   s.name,
		Span:   s.id,
		Parent: s.parent,
		Attrs:  attrs,
		Fields: fields,
	})
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
