package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted by the layer. Consumers (Summarize, external tools)
// switch on Type; unknown types must be skipped, not rejected, so the
// schema can grow.
const (
	EventSpanStart  = "span_start"
	EventSpanEnd    = "span_end"
	EventCheckpoint = "checkpoint"
	EventMetric     = "metric"
	EventError      = "error"
	EventSnapshot   = "snapshot"
	EventAccess     = "access"
)

// Event is one structured record in a run log.
type Event struct {
	// TimeNS is the wall-clock timestamp in Unix nanoseconds.
	TimeNS int64 `json:"t"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Name identifies the span, metric or checkpoint stream.
	Name string `json:"name,omitempty"`
	// Span and Parent are span ids for span_start/span_end events
	// (Parent 0 marks a root span).
	Span   int64 `json:"span,omitempty"`
	Parent int64 `json:"parent,omitempty"`
	// Attrs carries numeric payload fields (duration, estimates, ...).
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Fields carries string payload fields (request ids, methods, paths
	// on access events; span annotations on span_end events).
	Fields map[string]string `json:"fields,omitempty"`
	// Msg carries free text (error events).
	Msg string `json:"msg,omitempty"`
	// Metrics carries a full registry snapshot for snapshot events.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Sink serializes events to a writer as JSONL (one JSON object per line).
// Emit is safe for concurrent use. A nil *Sink drops every event.
type Sink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
	err error
}

// NewSink wraps a writer (file, buffer, network pipe — anything io.Writer)
// in a JSONL event sink.
func NewSink(w io.Writer) *Sink {
	return &Sink{enc: json.NewEncoder(w), w: w}
}

// Emit appends one event to the log. The first serialization error is
// retained (see Err) and later events are dropped.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(ev); err != nil {
		s.err = fmt.Errorf("obs: emitting event: %w", err)
	}
}

// Err reports the first write error, if any.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadEvents parses a JSONL run log. Malformed lines are skipped so a
// truncated log (crashed run) still replays; only reader failures error.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading run log after %d events: %w", len(out), err)
	}
	return out, nil
}
