package obs

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestSpanContextPropagation verifies the handler → engine → backend
// pattern: spans opened through StartSpanCtx parent onto the span riding
// the context, and the JSONL log links the tree by span/parent ids.
func TestSpanContextPropagation(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewRegistry(), NewSink(&buf))

	root, ctx := o.StartSpanCtx(context.Background(), "http.eval")
	if SpanFromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	mid, ctx2 := o.StartSpanCtx(ctx, "engine.evaluate")
	leaf, _ := o.StartSpanCtx(ctx2, "backend.exact")
	leaf.End()
	mid.End()
	root.SetField("request_id", "r-000001")
	root.SetAttr("status", 200)
	root.End()

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Event{}
	for _, ev := range events {
		if ev.Type == EventSpanStart {
			byName[ev.Name] = ev
		}
	}
	if byName["engine.evaluate"].Parent != byName["http.eval"].Span {
		t.Errorf("engine span parent = %d, want root span %d", byName["engine.evaluate"].Parent, byName["http.eval"].Span)
	}
	if byName["backend.exact"].Parent != byName["engine.evaluate"].Span {
		t.Errorf("backend span parent = %d, want engine span %d", byName["backend.exact"].Parent, byName["engine.evaluate"].Span)
	}
	var rootEnd *Event
	for i, ev := range events {
		if ev.Type == EventSpanEnd && ev.Name == "http.eval" {
			rootEnd = &events[i]
		}
	}
	if rootEnd == nil {
		t.Fatal("no span_end for the root span")
	}
	if rootEnd.Fields["request_id"] != "r-000001" {
		t.Errorf("span_end fields = %v, want request_id r-000001", rootEnd.Fields)
	}
	if rootEnd.Attrs["status"] != 200 {
		t.Errorf("span_end attrs = %v, want status 200", rootEnd.Attrs)
	}
}

// TestSpanContextNil checks the disabled paths: nil observers and bare
// contexts propagate nothing and never panic.
func TestSpanContextNil(t *testing.T) {
	var o *Observer
	sp, ctx := o.StartSpanCtx(context.Background(), "x")
	if sp != nil {
		t.Error("nil observer returned a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("nil observer propagated a span")
	}
	if SpanFromContext(nil) != nil { //nolint:staticcheck // nil ctx is the documented degenerate case
		t.Error("nil context carries a span")
	}
	sp.SetAttr("a", 1)
	sp.SetField("f", "v")
	if sp.ID() != 0 {
		t.Error("nil span has an id")
	}
	sp.End()
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("nil span should not derive a new context")
	}
}

// TestRuntimeCollector checks the one-shot sample and the background
// ticker: gauges appear with plausible values and stop() halts sampling.
func TestRuntimeCollector(t *testing.T) {
	o := New(NewRegistry(), nil)
	CollectRuntime(o)
	if g := o.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", g)
	}
	if g := o.Gauge("runtime.heap_alloc_bytes").Value(); g <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", g)
	}
	stop := StartRuntimeCollector(o, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	// After stop returns no further writes may happen; Set a sentinel and
	// verify it sticks.
	o.Gauge("runtime.goroutines").Set(-1)
	time.Sleep(3 * time.Millisecond)
	if g := o.Gauge("runtime.goroutines").Value(); g != -1 {
		t.Errorf("collector wrote after stop: runtime.goroutines = %v", g)
	}
	CollectRuntime(nil)
	StartRuntimeCollector(nil, time.Millisecond)()
}
