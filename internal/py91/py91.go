// Package py91 implements the three-player setting of Papadimitriou and
// Yannakakis, "On the Value of Information in Distributed Decision-Making"
// (PODC 1991), which the reproduced paper generalizes. PY91 fixes n = 3
// players with U[0,1] inputs, two bins of capacity 1, and studies how the
// best achievable no-overflow probability grows with the communication
// pattern. Protocols in PY91 compare weighted averages of the inputs a
// player sees against thresholds; the no-communication member of that
// family is the single-threshold algorithm whose optimal threshold
// 1 - sqrt(1/7) PY91 conjectured and the reproduced paper proves
// (Section 5.2.1).
//
// The package provides the communication-pattern ladder (none → one-way →
// broadcast → full information), parameterized weighted-average protocols
// for each pattern, exact evaluation for the no-communication member, and
// simulation-based evaluation for the richer patterns, so experiments can
// chart the value of information against the paper's no-communication
// optimum.
package py91

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nonoblivious"
)

// Players is the PY91 system size.
const Players = 3

// Capacity is the PY91 bin capacity.
const Capacity = 1.0

// ConjecturedOptimalThreshold is 1 - sqrt(1/7), the no-communication
// threshold PY91 conjectured optimal and the reproduced paper proves
// optimal (Section 5.2.1).
var ConjecturedOptimalThreshold = 1 - math.Sqrt(1.0/7)

// Pattern enumerates the PY91 communication patterns for three players.
type Pattern int

// The communication ladder, ordered by information content.
const (
	// NoCommunication: every player sees only its own input.
	NoCommunication Pattern = iota + 1
	// OneWay: player 0 sends its input to player 1.
	OneWay
	// Broadcast: player 0's input is seen by players 1 and 2.
	Broadcast
	// Full: every player sees every input (centralized decision).
	Full
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case NoCommunication:
		return "none"
	case OneWay:
		return "one-way"
	case Broadcast:
		return "broadcast"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Protocol is a deterministic three-player decision protocol respecting
// some communication pattern.
type Protocol interface {
	// Name labels the protocol.
	Name() string
	// Pattern reports which inputs each player may read.
	Pattern() Pattern
	// Decide maps the full input vector to the three bin choices, reading
	// only the inputs its pattern allows.
	Decide(x [Players]float64) ([Players]model.Bin, error)
}

// BatchProtocol is implemented by protocols that can decide many
// pre-sampled trials in one call, letting the Monte-Carlo evaluator skip
// the per-trial interface dispatch through Decide. Trial t's inputs are
// xs[t*Players : (t+1)*Players] (the order they were drawn in), and
// out[t] receives the three bin choices. Implementations must agree with
// Decide element for element.
type BatchProtocol interface {
	Protocol
	// DecideBatch decides len(out) trials; len(xs) = len(out)*Players.
	DecideBatch(xs []float64, out [][Players]model.Bin)
}

// ThresholdProtocol is the no-communication member of the PY91 family:
// player i chooses bin 0 exactly when x_i ≤ Theta[i].
type ThresholdProtocol struct {
	// Theta holds the three thresholds.
	Theta [Players]float64
}

// NewThresholdProtocol validates thresholds in [0, 1].
func NewThresholdProtocol(theta [Players]float64) (*ThresholdProtocol, error) {
	for i, a := range theta {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return nil, fmt.Errorf("py91: threshold[%d] = %v outside [0, 1]", i, a)
		}
	}
	return &ThresholdProtocol{Theta: theta}, nil
}

// ConjecturedOptimal returns the symmetric threshold protocol at
// 1 - sqrt(1/7) — the protocol PY91 conjectured optimal for the
// no-communication pattern.
func ConjecturedOptimal() *ThresholdProtocol {
	b := ConjecturedOptimalThreshold
	return &ThresholdProtocol{Theta: [Players]float64{b, b, b}}
}

// Name implements Protocol.
func (p *ThresholdProtocol) Name() string {
	return fmt.Sprintf("threshold(%.4f,%.4f,%.4f)", p.Theta[0], p.Theta[1], p.Theta[2])
}

// Pattern implements Protocol.
func (p *ThresholdProtocol) Pattern() Pattern { return NoCommunication }

// Decide implements Protocol.
func (p *ThresholdProtocol) Decide(x [Players]float64) ([Players]model.Bin, error) {
	var out [Players]model.Bin
	for i := range x {
		if x[i] <= p.Theta[i] {
			out[i] = model.Bin0
		} else {
			out[i] = model.Bin1
		}
	}
	return out, nil
}

// DecideBatch implements BatchProtocol.
func (p *ThresholdProtocol) DecideBatch(xs []float64, out [][Players]model.Bin) {
	t0, t1, t2 := p.Theta[0], p.Theta[1], p.Theta[2]
	for t := range out {
		x := xs[t*Players : t*Players+Players]
		out[t][0] = binFor(x[0] <= t0)
		out[t][1] = binFor(x[1] <= t1)
		out[t][2] = binFor(x[2] <= t2)
	}
}

// ExactWinProbability evaluates the threshold protocol exactly through the
// reproduced paper's Theorem 5.1.
func (p *ThresholdProtocol) ExactWinProbability() (float64, error) {
	return nonoblivious.WinningProbability(p.Theta[:], Capacity)
}

// WeightedAverageProtocol is the PY91 protocol shape for patterns with
// communication: a player that sees extra inputs compares a weighted
// average of what it sees against a threshold. Player 0 always thresholds
// its own input at Theta0. Under OneWay, player 1 chooses bin 0 when
// W*x_0 + (1-W)*x_1 ≤ Theta1 and player 2 thresholds its own input at
// Theta2; under Broadcast, player 2 likewise uses W*x_0 + (1-W)*x_2 ≤
// Theta2.
type WeightedAverageProtocol struct {
	// CommPattern selects OneWay or Broadcast.
	CommPattern Pattern
	// Theta0, Theta1, Theta2 are the per-player cut points.
	Theta0, Theta1, Theta2 float64
	// W is the weight on the heard input x_0.
	W float64
}

// NewWeightedAverageProtocol validates the parameters.
func NewWeightedAverageProtocol(pattern Pattern, theta0, theta1, theta2, w float64) (*WeightedAverageProtocol, error) {
	if pattern != OneWay && pattern != Broadcast {
		return nil, fmt.Errorf("py91: weighted-average protocol needs OneWay or Broadcast, got %v", pattern)
	}
	for i, v := range []float64{theta0, theta1, theta2} {
		if math.IsNaN(v) || v < -1 || v > 2 {
			return nil, fmt.Errorf("py91: theta%d = %v outside [-1, 2]", i, v)
		}
	}
	if math.IsNaN(w) || w < 0 || w > 1 {
		return nil, fmt.Errorf("py91: weight %v outside [0, 1]", w)
	}
	return &WeightedAverageProtocol{
		CommPattern: pattern,
		Theta0:      theta0, Theta1: theta1, Theta2: theta2,
		W: w,
	}, nil
}

// Name implements Protocol.
func (p *WeightedAverageProtocol) Name() string {
	return fmt.Sprintf("%s-weighted(θ=%.3f,%.3f,%.3f w=%.3f)",
		p.CommPattern, p.Theta0, p.Theta1, p.Theta2, p.W)
}

// Pattern implements Protocol.
func (p *WeightedAverageProtocol) Pattern() Pattern { return p.CommPattern }

// Decide implements Protocol.
func (p *WeightedAverageProtocol) Decide(x [Players]float64) ([Players]model.Bin, error) {
	var out [Players]model.Bin
	out[0] = binFor(x[0] <= p.Theta0)
	out[1] = binFor(p.W*x[0]+(1-p.W)*x[1] <= p.Theta1)
	if p.CommPattern == Broadcast {
		out[2] = binFor(p.W*x[0]+(1-p.W)*x[2] <= p.Theta2)
	} else {
		out[2] = binFor(x[2] <= p.Theta2)
	}
	return out, nil
}

// DecideBatch implements BatchProtocol, hoisting the pattern branch out
// of the trial loop.
func (p *WeightedAverageProtocol) DecideBatch(xs []float64, out [][Players]model.Bin) {
	w, t0, t1, t2 := p.W, p.Theta0, p.Theta1, p.Theta2
	broadcast := p.CommPattern == Broadcast
	for t := range out {
		x := xs[t*Players : t*Players+Players]
		out[t][0] = binFor(x[0] <= t0)
		out[t][1] = binFor(w*x[0]+(1-w)*x[1] <= t1)
		if broadcast {
			out[t][2] = binFor(w*x[0]+(1-w)*x[2] <= t2)
		} else {
			out[t][2] = binFor(x[2] <= t2)
		}
	}
}

func binFor(low bool) model.Bin {
	if low {
		return model.Bin0
	}
	return model.Bin1
}

// FullInformationProtocol is the centralized benchmark: with every input
// visible to everyone, the players agree on any feasible assignment when
// one exists (here: first-fit over all partitions).
type FullInformationProtocol struct{}

// Name implements Protocol.
func (FullInformationProtocol) Name() string { return "full-information" }

// Pattern implements Protocol.
func (FullInformationProtocol) Pattern() Pattern { return Full }

// Decide implements Protocol. It returns the first feasible assignment in
// mask order, or the all-but-first split when none is feasible (the
// protocol must still output something; losses are counted by the
// evaluator).
func (FullInformationProtocol) Decide(x [Players]float64) ([Players]model.Bin, error) {
	for mask := 0; mask < 1<<Players; mask++ {
		var load0, load1 float64
		for i := 0; i < Players; i++ {
			if mask&(1<<i) == 0 {
				load0 += x[i]
			} else {
				load1 += x[i]
			}
		}
		if load0 <= Capacity && load1 <= Capacity {
			var out [Players]model.Bin
			for i := 0; i < Players; i++ {
				if mask&(1<<i) != 0 {
					out[i] = model.Bin1
				}
			}
			return out, nil
		}
	}
	return [Players]model.Bin{model.Bin0, model.Bin1, model.Bin1}, nil
}

// Compile-time interface compliance checks.
var (
	_ Protocol      = (*ThresholdProtocol)(nil)
	_ Protocol      = (*WeightedAverageProtocol)(nil)
	_ Protocol      = FullInformationProtocol{}
	_ BatchProtocol = (*ThresholdProtocol)(nil)
	_ BatchProtocol = (*WeightedAverageProtocol)(nil)
)
