package py91

import (
	"fmt"

	"repro/internal/model"
)

// EvaluateByQuadrature computes a deterministic protocol's winning
// probability by midpoint quadrature over the three-dimensional input
// cube: the cube is split into grid³ cells and the win indicator is
// evaluated at each cell centre. For protocols whose decision regions have
// piecewise-smooth boundaries the error is O(1/grid). It provides a
// deterministic, simulation-free oracle to cross-check Evaluate against.
func EvaluateByQuadrature(p Protocol, grid int) (float64, error) {
	if p == nil {
		return 0, fmt.Errorf("py91: nil protocol")
	}
	if grid < 4 || grid > 1024 {
		return 0, fmt.Errorf("py91: grid %d outside [4, 1024]", grid)
	}
	h := 1.0 / float64(grid)
	wins := 0
	total := grid * grid * grid
	var x [Players]float64
	for i := 0; i < grid; i++ {
		x[0] = (float64(i) + 0.5) * h
		for j := 0; j < grid; j++ {
			x[1] = (float64(j) + 0.5) * h
			for k := 0; k < grid; k++ {
				x[2] = (float64(k) + 0.5) * h
				bins, err := p.Decide(x)
				if err != nil {
					return 0, fmt.Errorf("py91: decision failed at %v: %w", x, err)
				}
				var load0, load1 float64
				for l := range x {
					if bins[l] == model.Bin0 {
						load0 += x[l]
					} else {
						load1 += x[l]
					}
				}
				if load0 <= Capacity && load1 <= Capacity {
					wins++
				}
			}
		}
	}
	return float64(wins) / float64(total), nil
}
