package py91

import (
	"math"
	"testing"
)

func TestQuadratureMatchesExactForThreshold(t *testing.T) {
	proto := ConjecturedOptimal()
	exact, err := proto.ExactWinProbability()
	if err != nil {
		t.Fatal(err)
	}
	quad, err := EvaluateByQuadrature(proto, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quad-exact) > 3e-3 {
		t.Errorf("quadrature %v vs exact %v", quad, exact)
	}
}

func TestQuadratureMatchesSimulationForWeighted(t *testing.T) {
	proto, err := NewWeightedAverageProtocol(Broadcast, 0.55, 0.7, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := EvaluateByQuadrature(proto, 200)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(proto, SimConfig{Trials: 400000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quad-ev.P) > 4*ev.StdErr+3e-3 {
		t.Errorf("quadrature %v vs simulation %v ± %v", quad, ev.P, ev.StdErr)
	}
}

func TestQuadratureFullInformationIsThreeQuarters(t *testing.T) {
	quad, err := EvaluateByQuadrature(FullInformationProtocol{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quad-0.75) > 3e-3 {
		t.Errorf("full information quadrature = %v, want 3/4", quad)
	}
}

func TestQuadratureConvergence(t *testing.T) {
	proto := ConjecturedOptimal()
	exact, err := proto.ExactWinProbability()
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := EvaluateByQuadrature(proto, 40)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := EvaluateByQuadrature(proto, 320)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fine-exact) > math.Abs(coarse-exact)+1e-6 {
		t.Errorf("refining the grid should not worsen the estimate: coarse err %v, fine err %v",
			math.Abs(coarse-exact), math.Abs(fine-exact))
	}
}

func TestQuadratureValidation(t *testing.T) {
	if _, err := EvaluateByQuadrature(nil, 100); err == nil {
		t.Error("nil protocol: expected error")
	}
	if _, err := EvaluateByQuadrature(ConjecturedOptimal(), 2); err == nil {
		t.Error("tiny grid: expected error")
	}
	if _, err := EvaluateByQuadrature(ConjecturedOptimal(), 2048); err == nil {
		t.Error("huge grid: expected error")
	}
}
