package py91

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/model"
	"repro/internal/nonoblivious"
)

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		NoCommunication: "none",
		OneWay:          "one-way",
		Broadcast:       "broadcast",
		Full:            "full",
		Pattern(42):     "pattern(42)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestNewThresholdProtocolValidation(t *testing.T) {
	if _, err := NewThresholdProtocol([Players]float64{0.5, 1.5, 0.5}); err == nil {
		t.Error("threshold > 1: expected error")
	}
	if _, err := NewThresholdProtocol([Players]float64{math.NaN(), 0.5, 0.5}); err == nil {
		t.Error("NaN threshold: expected error")
	}
	p, err := NewThresholdProtocol([Players]float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern() != NoCommunication {
		t.Error("threshold protocol should be no-communication")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestThresholdProtocolDecide(t *testing.T) {
	p, err := NewThresholdProtocol([Players]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := p.Decide([Players]float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := [Players]model.Bin{model.Bin0, model.Bin0, model.Bin1}
	if bins != want {
		t.Errorf("Decide = %v, want %v", bins, want)
	}
}

func TestConjecturedOptimalMatchesPaperProof(t *testing.T) {
	// The reproduced paper proves the PY91 conjecture: the protocol at
	// threshold 1 - sqrt(1/7) is exactly the paper's optimal symmetric
	// single-threshold algorithm for n=3, δ=1.
	proto := ConjecturedOptimal()
	exact, err := proto.ExactWinProbability()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := nonoblivious.OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proto.Theta[0]-opt.BetaFloat) > 1e-14 {
		t.Errorf("conjectured threshold %v vs proven optimum %v", proto.Theta[0], opt.BetaFloat)
	}
	if math.Abs(exact-opt.WinProbabilityFloat) > 1e-10 {
		t.Errorf("conjectured protocol P = %v vs proven optimum %v", exact, opt.WinProbabilityFloat)
	}
	if math.Abs(exact-0.545) > 1e-3 {
		t.Errorf("P = %v, want ≈ 0.545", exact)
	}
}

func TestNewWeightedAverageProtocolValidation(t *testing.T) {
	if _, err := NewWeightedAverageProtocol(NoCommunication, 0.5, 0.5, 0.5, 0.5); err == nil {
		t.Error("wrong pattern: expected error")
	}
	if _, err := NewWeightedAverageProtocol(Full, 0.5, 0.5, 0.5, 0.5); err == nil {
		t.Error("Full pattern: expected error")
	}
	if _, err := NewWeightedAverageProtocol(OneWay, 5, 0.5, 0.5, 0.5); err == nil {
		t.Error("theta out of range: expected error")
	}
	if _, err := NewWeightedAverageProtocol(OneWay, 0.5, 0.5, 0.5, 2); err == nil {
		t.Error("weight out of range: expected error")
	}
	p, err := NewWeightedAverageProtocol(Broadcast, 0.5, 0.6, 0.6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern() != Broadcast || p.Name() == "" {
		t.Error("metadata wrong")
	}
}

func TestWeightedAverageDecideRespectsPattern(t *testing.T) {
	// Under OneWay, player 2 must not react to x_0.
	p, err := NewWeightedAverageProtocol(OneWay, 0.5, 0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Decide([Players]float64{0.1, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Decide([Players]float64{0.9, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if a[2] != b[2] {
		t.Error("one-way protocol: player 2 reacted to x_0")
	}
	// Player 1 does react.
	if a[1] == b[1] {
		t.Error("one-way protocol: player 1 ignored x_0 despite weight 0.5")
	}
	// Under Broadcast, player 2 reacts too.
	pb, err := NewWeightedAverageProtocol(Broadcast, 0.5, 0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err = pb.Decide([Players]float64{0.1, 0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	b, err = pb.Decide([Players]float64{0.9, 0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if a[2] == b[2] {
		t.Error("broadcast protocol: player 2 ignored x_0")
	}
}

func TestFullInformationProtocol(t *testing.T) {
	p := FullInformationProtocol{}
	if p.Pattern() != Full || p.Name() == "" {
		t.Error("metadata wrong")
	}
	// Feasible instance: must return a feasible assignment.
	x := [Players]float64{0.9, 0.8, 0.1}
	bins, err := p.Decide(x)
	if err != nil {
		t.Fatal(err)
	}
	var load0, load1 float64
	for i := range x {
		if bins[i] == model.Bin0 {
			load0 += x[i]
		} else {
			load1 += x[i]
		}
	}
	if load0 > Capacity || load1 > Capacity {
		t.Errorf("full-information protocol overflowed on feasible instance: %v / %v", load0, load1)
	}
	// Infeasible instance: any output is allowed, but no error.
	if _, err := p.Decide([Players]float64{0.9, 0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateThresholdAgainstExact(t *testing.T) {
	proto := ConjecturedOptimal()
	exact, err := proto.ExactWinProbability()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(proto, SimConfig{Trials: 400000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.P-exact) > 4*ev.StdErr {
		t.Errorf("simulated %v ± %v vs exact %v", ev.P, ev.StdErr, exact)
	}
	if ev.Pattern != NoCommunication || ev.Trials != 400000 {
		t.Errorf("metadata wrong: %+v", ev)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, SimConfig{Trials: 10}); err == nil {
		t.Error("nil protocol: expected error")
	}
	if _, err := Evaluate(ConjecturedOptimal(), SimConfig{Trials: 0}); err == nil {
		t.Error("zero trials: expected error")
	}
	if _, err := Evaluate(ConjecturedOptimal(), SimConfig{Trials: 10, Workers: -1}); err == nil {
		t.Error("negative workers: expected error")
	}
}

func TestEvaluateDeterministicForSeed(t *testing.T) {
	proto := ConjecturedOptimal()
	a, err := Evaluate(proto, SimConfig{Trials: 50000, Workers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(proto, SimConfig{Trials: 50000, Workers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P {
		t.Errorf("same seed gave %v and %v", a.P, b.P)
	}
}

func TestInformationLadder(t *testing.T) {
	// More information should not hurt: full information dominates the
	// no-communication optimum, and a tuned broadcast protocol sits in
	// between (weights tuned by Nelder-Mead on a fixed seed).
	cfg := SimConfig{Trials: 120000, Seed: 31}
	none, err := Evaluate(ConjecturedOptimal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Evaluate(FullInformationProtocol{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Full information achieves the feasibility bound 3/4 for n=3, δ=1.
	if math.Abs(full.P-0.75) > 5*full.StdErr {
		t.Errorf("full information P = %v ± %v, want 3/4", full.P, full.StdErr)
	}
	if full.P <= none.P {
		t.Errorf("full information %v should dominate no-communication %v", full.P, none.P)
	}
	_, bc, err := OptimizeWeighted(Broadcast, SimConfig{Trials: 40000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if bc.P < none.P-0.01 {
		t.Errorf("tuned broadcast %v should not fall below no-communication %v", bc.P, none.P)
	}
	if bc.P > full.P+0.01 {
		t.Errorf("broadcast %v cannot beat full information %v", bc.P, full.P)
	}
}

func TestOptimizeWeightedValidation(t *testing.T) {
	if _, _, err := OptimizeWeighted(Full, SimConfig{Trials: 100}); err == nil {
		t.Error("Full pattern: expected error")
	}
	if _, _, err := OptimizeWeighted(OneWay, SimConfig{Trials: 0}); err == nil {
		t.Error("zero trials: expected error")
	}
}
