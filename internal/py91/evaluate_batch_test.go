package py91

import (
	"testing"

	"repro/internal/model"
)

// plainProtocol hides a protocol's BatchProtocol implementation so tests
// can force Evaluate onto the per-trial path.
type plainProtocol struct{ p Protocol }

func (pp plainProtocol) Name() string     { return pp.p.Name() }
func (pp plainProtocol) Pattern() Pattern { return pp.p.Pattern() }
func (pp plainProtocol) Decide(x [Players]float64) ([Players]model.Bin, error) {
	return pp.p.Decide(x)
}

// TestEvaluateBatchedMatchesPerTrial runs each batchable protocol through
// Evaluate twice — once batched, once with the batch implementation
// hidden — and requires identical evaluations for fixed (Seed, Workers).
func TestEvaluateBatchedMatchesPerTrial(t *testing.T) {
	wa, err := NewWeightedAverageProtocol(Broadcast, 0.62, 0.9, 0.9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := NewWeightedAverageProtocol(OneWay, 0.6, 0.8, 0.65, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewThresholdProtocol([3]float64{0.62, 0.55, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []BatchProtocol{wa, ow, tp} {
		for _, w := range []int{1, 4} {
			cfg := SimConfig{Trials: 20000, Workers: w, Seed: 5}
			batched, err := Evaluate(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			perTrial, err := Evaluate(plainProtocol{p}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The wrapper changes only the reported name.
			perTrial.Protocol = batched.Protocol
			if batched != perTrial {
				t.Errorf("%s workers=%d: batched %+v != per-trial %+v", p.Name(), w, batched, perTrial)
			}
		}
	}
}

// TestEvaluateMatchesGolden pins Evaluate to estimates recorded from the
// pre-batch per-trial engine (Trials=20000, Seed=5).
func TestEvaluateMatchesGolden(t *testing.T) {
	wa, err := NewWeightedAverageProtocol(Broadcast, 0.62, 0.9, 0.9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewThresholdProtocol([3]float64{0.62, 0.55, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		p    Protocol
		wins map[int]int64 // workers → golden win count (P * 20000)
	}{
		{wa, map[int]int64{1: 6850, 4: 6933}},
		{tp, map[int]int64{1: 10820, 4: 10894}},
	} {
		for w, want := range tc.wins {
			ev, err := Evaluate(tc.p, SimConfig{Trials: 20000, Workers: w, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if got := int64(ev.P*float64(ev.Trials) + 0.5); got != want {
				t.Errorf("%s workers=%d: wins = %d (p=%.10f), golden %d", tc.p.Name(), w, got, ev.P, want)
			}
		}
	}
}

// TestEvaluateBatchedAllocationRegression pins the batched evaluation's
// allocation profile: per-run setup only, under 0.01 allocs/trial.
func TestEvaluateBatchedAllocationRegression(t *testing.T) {
	tp, err := NewThresholdProtocol([3]float64{0.62, 0.55, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 50000
	cfg := SimConfig{Trials: trials, Workers: 1, Seed: 3}
	if _, err := Evaluate(tp, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Evaluate(tp, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if perTrial := allocs / trials; perTrial >= 0.01 {
		t.Errorf("%v allocs per run (%v/trial), want < 0.01/trial", allocs, perTrial)
	}
}
