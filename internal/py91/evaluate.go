package py91

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SimConfig controls the Monte-Carlo evaluation of PY91 protocols.
type SimConfig struct {
	// Trials is the number of input vectors to draw. Must be positive.
	Trials int
	// Workers is the parallel worker count; 0 selects GOMAXPROCS.
	Workers int
	// Seed seeds the per-worker streams.
	Seed uint64
}

// Evaluation is the simulated performance of a protocol.
type Evaluation struct {
	// Protocol names the evaluated protocol.
	Protocol string
	// Pattern is its communication pattern.
	Pattern Pattern
	// P is the estimated winning probability with StdErr its standard
	// error.
	P, StdErr float64
	// Trials is the number of rounds played.
	Trials int64
}

// evalBatchSize is how many trials the batched evaluation path samples
// and decides per BatchProtocol call.
const evalBatchSize = 256

// Evaluate estimates a protocol's winning probability by simulation.
// Protocols that implement BatchProtocol (the threshold and
// weighted-average families) are decided in batches of pre-sampled
// trials, skipping the per-trial interface dispatch; the draw order is
// the same either way, so the estimate for a fixed (Seed, Workers) pair
// does not depend on which path runs.
func Evaluate(p Protocol, cfg SimConfig) (Evaluation, error) {
	if p == nil {
		return Evaluation{}, fmt.Errorf("py91: nil protocol")
	}
	if cfg.Trials <= 0 {
		return Evaluation{}, fmt.Errorf("py91: trial count %d must be positive", cfg.Trials)
	}
	workers, err := sim.WorkerCount(cfg.Workers, cfg.Trials)
	if err != nil {
		return Evaluation{}, fmt.Errorf("py91: %w", err)
	}
	bp, batched := p.(BatchProtocol)
	counters := make([]stats.Proportion, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	base := cfg.Trials / workers
	extra := cfg.Trials % workers
	for w := 0; w < workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			s := cfg.Seed + 0x9e3779b97f4a7c15*uint64(w+1)
			rng := rand.New(rand.NewPCG(s, s^0xda3e39cb94b95bdb))
			if batched {
				evalBatched(bp, rng, quota, &counters[w])
				return
			}
			for i := 0; i < quota; i++ {
				var x [Players]float64
				for j := range x {
					x[j] = rng.Float64()
				}
				bins, err := p.Decide(x)
				if err != nil {
					errs[w] = err
					return
				}
				var load0, load1 float64
				for j := range x {
					if bins[j] == 0 {
						load0 += x[j]
					} else {
						load1 += x[j]
					}
				}
				counters[w].Add(load0 <= Capacity && load1 <= Capacity)
			}
		}(w, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Evaluation{}, fmt.Errorf("py91: protocol decision failed: %w", err)
		}
	}
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	return Evaluation{
		Protocol: p.Name(),
		Pattern:  p.Pattern(),
		P:        total.Estimate(),
		StdErr:   total.StdErr(),
		Trials:   total.Trials(),
	}, nil
}

// evalBatched is one worker's batched evaluation loop: sample a batch of
// input vectors (in the per-trial draw order), decide them with a single
// DecideBatch call, and count wins. The buffers are allocated once per
// worker, so the steady-state loop allocates nothing per trial.
func evalBatched(bp BatchProtocol, rng *rand.Rand, quota int, counter *stats.Proportion) {
	xs := make([]float64, evalBatchSize*Players)
	outs := make([][Players]model.Bin, evalBatchSize)
	var wins, trials int64
	for done := 0; done < quota; {
		b := evalBatchSize
		if quota-done < b {
			b = quota - done
		}
		batch := xs[:b*Players]
		for j := range batch {
			batch[j] = rng.Float64()
		}
		bp.DecideBatch(batch, outs[:b])
		for t := 0; t < b; t++ {
			var load0, load1 float64
			for j := 0; j < Players; j++ {
				x := batch[t*Players+j]
				d := float64(outs[t][j])
				load0 += x * (1 - d)
				load1 += x * d
			}
			if load0 <= Capacity && load1 <= Capacity {
				wins++
			}
		}
		trials += int64(b)
		done += b
	}
	// Cannot fail: wins ≤ trials and both are non-negative.
	_ = counter.AddN(wins, trials)
}

// OptimizeWeighted tunes a weighted-average protocol's four parameters by
// Nelder-Mead over simulated winning probability and returns the best
// protocol found together with its evaluation. The simulation seed is held
// fixed during the search (common random numbers) so the objective is
// deterministic.
func OptimizeWeighted(pattern Pattern, cfg SimConfig) (*WeightedAverageProtocol, Evaluation, error) {
	if pattern != OneWay && pattern != Broadcast {
		return nil, Evaluation{}, fmt.Errorf("py91: can only optimize OneWay or Broadcast, got %v", pattern)
	}
	if cfg.Trials <= 0 {
		return nil, Evaluation{}, fmt.Errorf("py91: trial count %d must be positive", cfg.Trials)
	}
	objective := func(v []float64) float64 {
		p, err := NewWeightedAverageProtocol(pattern, v[0], v[1], v[2], v[3])
		if err != nil {
			return -1
		}
		ev, err := Evaluate(p, cfg)
		if err != nil {
			return -1
		}
		return ev.P
	}
	b := ConjecturedOptimalThreshold
	res, err := optimize.NelderMeadMax(objective,
		[]float64{b, b, b, 0.3},
		[]float64{0, 0, 0, 0},
		[]float64{1, 1.5, 1.5, 1},
		0.15, 400, 1e-7)
	if err != nil {
		return nil, Evaluation{}, err
	}
	best, err := NewWeightedAverageProtocol(pattern, res.X[0], res.X[1], res.X[2], res.X[3])
	if err != nil {
		return nil, Evaluation{}, err
	}
	ev, err := Evaluate(best, cfg)
	if err != nil {
		return nil, Evaluation{}, err
	}
	return best, ev, nil
}
