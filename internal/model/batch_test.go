package model

import (
	"math/rand/v2"
	"testing"
)

// plainRule hides a rule's BatchRule implementation so tests can force
// the per-trial path.
type plainRule struct{ r LocalRule }

func (p plainRule) Decide(x float64, rng *rand.Rand) (Bin, error) { return p.r.Decide(x, rng) }

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x94d049bb133111eb))
}

// TestDecideBatchMatchesDecide pins the core BatchRule contract: for
// every rule family, DecideBatch must agree element-for-element with
// Decide given the same inputs and coins.
func TestDecideBatchMatchesDecide(t *testing.T) {
	thr, err := NewThresholdRule(0.622)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := NewObliviousRule(0.37)
	if err != nil {
		t.Fatal(err)
	}
	oblZero, err := NewObliviousRule(0)
	if err != nil {
		t.Fatal(err)
	}
	oblOne, err := NewObliviousRule(1)
	if err != nil {
		t.Fatal(err)
	}
	ivl, err := NewIntervalUnionRule("band", []float64{0.2, 0.6}, []float64{0.45, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewIntervalUnionRule("one", []float64{0.25}, []float64{0.75})
	if err != nil {
		t.Fatal(err)
	}

	rng := testRNG(1)
	const trials = 4096
	inputs := make([]float64, trials)
	coins := make([]float64, trials)
	for k := range inputs {
		inputs[k] = rng.Float64()
		coins[k] = rng.Float64()
	}
	// Boundary values must agree too.
	inputs[0], inputs[1], inputs[2] = 0, 1, 0.622
	inputs[3], inputs[4] = 0.45, 0.6

	for _, tc := range []struct {
		name string
		rule BatchRule
	}{
		{"threshold", thr},
		{"oblivious", obl},
		{"oblivious-p0", oblZero},
		{"oblivious-p1", oblOne},
		{"interval-union", ivl},
		{"interval-single", single},
	} {
		out := make([]Bin, trials)
		var cs []float64
		switch tc.rule.CoinDraws() {
		case 0:
		case 1:
			cs = coins
		default:
			t.Fatalf("%s: unexpected CoinDraws %d", tc.name, tc.rule.CoinDraws())
		}
		tc.rule.DecideBatch(inputs, cs, out)
		for k := range inputs {
			// Replay the per-trial call with the matching coin as the
			// only rng draw.
			want, err := tc.rule.Decide(inputs[k], coinSource(coins[k]))
			if err != nil {
				t.Fatalf("%s: Decide: %v", tc.name, err)
			}
			if out[k] != want {
				t.Fatalf("%s: trial %d (x=%v, coin=%v): batch %v, per-trial %v",
					tc.name, k, inputs[k], coins[k], out[k], want)
			}
		}
	}
}

// coinSource returns an rng whose next Float64 is exactly c, for any c
// produced by a real Float64 call (an integer multiple of 2^-53):
// rand/v2's Float64 reads the low 53 bits of Uint64.
func coinSource(c float64) *rand.Rand {
	return rand.New(fixedSource{u: uint64(c * (1 << 53))})
}

type fixedSource struct{ u uint64 }

func (f fixedSource) Uint64() uint64 { return f.u }

func TestIntervalUnionRuleValidation(t *testing.T) {
	if _, err := NewIntervalUnionRule("bad", []float64{0.5}, []float64{0.4}); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := NewIntervalUnionRule("bad", []float64{0.1, 0.2}, []float64{0.3, 0.4}); err == nil {
		t.Error("overlapping intervals: expected error")
	}
	if _, err := NewIntervalUnionRule("bad", []float64{0.1}, []float64{0.2, 0.3}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := NewIntervalUnionRule("bad", []float64{-0.1}, []float64{0.2}); err == nil {
		t.Error("negative lo: expected error")
	}
	empty, err := NewIntervalUnionRule("empty", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := empty.Decide(0.5, nil); err != nil || b != Bin1 {
		t.Errorf("empty union Decide = %v, %v; want Bin1", b, err)
	}
}

// TestBatchKernelMatchesPerTrialPlay pins the RNG draw-order invariant at
// the model level: a BatchKernel.Play batch must reproduce, bit for bit,
// the outcomes of the same number of SampleInputs + Play rounds on an
// identically seeded stream — including randomized (coin-drawing) rules.
func TestBatchKernelMatchesPerTrialPlay(t *testing.T) {
	thr, _ := NewThresholdRule(0.622)
	obl, _ := NewObliviousRule(0.37)
	ivl, err := NewIntervalUnionRule("band", []float64{0.2, 0.6}, []float64{0.45, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem([]LocalRule{thr, obl, ivl, thr}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := NewBatchKernel(sys)
	if !ok {
		t.Fatal("expected a batch kernel for batchable rules")
	}
	if k.N() != 4 {
		t.Fatalf("kernel players = %d, want 4", k.N())
	}

	const b = 777 // odd size exercises the partial-batch path
	sc := GetBatchScratch()
	defer sc.Release()
	batchRNG := testRNG(99)
	wins := k.Play(sc, batchRNG, b)

	perTrialRNG := testRNG(99)
	perTrialWins := 0
	for i := 0; i < b; i++ {
		inputs, err := sys.SampleInputs(perTrialRNG)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sys.Play(inputs, perTrialRNG)
		if err != nil {
			t.Fatal(err)
		}
		if out.Win != sc.Wins()[i] {
			t.Fatalf("trial %d: batch win %v, per-trial win %v", i, sc.Wins()[i], out.Win)
		}
		if out.Win {
			perTrialWins++
		}
	}
	if wins != perTrialWins {
		t.Fatalf("batch wins %d, per-trial wins %d", wins, perTrialWins)
	}
	// The two paths must leave their streams in the same state.
	if a, bb := batchRNG.Uint64(), perTrialRNG.Uint64(); a != bb {
		t.Fatalf("streams diverged after play: %x vs %x", a, bb)
	}
}

// TestBatchKernelMatchesPerTrialPlayPi repeats the batch/per-trial
// equivalence on a heterogeneous system (x_i ~ U[0, π_i]): the widths-
// aware sampling branch must keep the per-trial RNG draw order, so both
// paths see identical streams bit for bit.
func TestBatchKernelMatchesPerTrialPlayPi(t *testing.T) {
	thr, _ := NewThresholdRule(0.4)
	obl, _ := NewObliviousRule(0.37)
	sys, err := NewSystemPi([]LocalRule{thr, obl, thr}, 1, []float64{0.5, 1, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Heterogeneous() {
		t.Fatal("system should report heterogeneous widths")
	}
	k, ok := NewBatchKernel(sys)
	if !ok {
		t.Fatal("expected a batch kernel for batchable rules")
	}

	const b = 777
	sc := GetBatchScratch()
	defer sc.Release()
	batchRNG := testRNG(41)
	wins := k.Play(sc, batchRNG, b)

	perTrialRNG := testRNG(41)
	perTrialWins := 0
	for i := 0; i < b; i++ {
		inputs, err := sys.SampleInputs(perTrialRNG)
		if err != nil {
			t.Fatal(err)
		}
		for j, x := range inputs {
			if w := sys.InputWidth(j); x < 0 || x > w {
				t.Fatalf("trial %d: input %d = %v outside [0, %v]", i, j, x, w)
			}
		}
		out, err := sys.Play(inputs, perTrialRNG)
		if err != nil {
			t.Fatal(err)
		}
		if out.Win != sc.Wins()[i] {
			t.Fatalf("trial %d: batch win %v, per-trial win %v", i, sc.Wins()[i], out.Win)
		}
		if out.Win {
			perTrialWins++
		}
	}
	if wins != perTrialWins {
		t.Fatalf("batch wins %d, per-trial wins %d", wins, perTrialWins)
	}
	if a, bb := batchRNG.Uint64(), perTrialRNG.Uint64(); a != bb {
		t.Fatalf("streams diverged after play: %x vs %x", a, bb)
	}
}

// TestNewBatchKernelFallsBack verifies that systems containing a rule
// without a batch implementation do not get a kernel.
func TestNewBatchKernelFallsBack(t *testing.T) {
	thr, _ := NewThresholdRule(0.5)
	sys, err := NewSystem([]LocalRule{thr, plainRule{thr}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewBatchKernel(sys); ok {
		t.Error("expected no kernel for a non-batch rule")
	}
	if _, ok := NewBatchKernel(nil); ok {
		t.Error("expected no kernel for a nil system")
	}
}

// TestBatchKernelPlayAllocationFree pins the zero-allocation contract of
// the steady-state kernel: once the scratch buffers are warm, Play must
// not allocate at all.
func TestBatchKernelPlayAllocationFree(t *testing.T) {
	thr, _ := NewThresholdRule(0.622)
	obl, _ := NewObliviousRule(0.37)
	for _, tc := range []struct {
		name string
		rule LocalRule
	}{
		{"threshold", thr},
		{"oblivious", obl},
	} {
		sys, err := UniformSystem(3, tc.rule, 1)
		if err != nil {
			t.Fatal(err)
		}
		k, ok := NewBatchKernel(sys)
		if !ok {
			t.Fatalf("%s: expected batch kernel", tc.name)
		}
		sc := GetBatchScratch()
		rng := testRNG(5)
		k.Play(sc, rng, 256) // warm the buffers
		allocs := testing.AllocsPerRun(10, func() {
			k.Play(sc, rng, 256)
		})
		sc.Release()
		if allocs != 0 {
			t.Errorf("%s: steady-state Play allocates %v times per batch, want 0", tc.name, allocs)
		}
	}
}

// TestPlayIntoReusesBuffers pins the scratch-buffer contract of the
// per-trial path: SampleInputsInto + PlayInto with caller-owned buffers
// must not allocate in steady state and must match Play exactly.
func TestPlayIntoReusesBuffers(t *testing.T) {
	thr, _ := NewThresholdRule(0.622)
	sys, err := UniformSystem(3, thr, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := testRNG(42), testRNG(42)
	inputs := make([]float64, sys.N())
	var out Outcome
	for i := 0; i < 100; i++ {
		if err := sys.SampleInputsInto(inputs, a); err != nil {
			t.Fatal(err)
		}
		if err := sys.PlayInto(&out, inputs, a); err != nil {
			t.Fatal(err)
		}
		fresh, err := sys.SampleInputs(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Play(fresh, b)
		if err != nil {
			t.Fatal(err)
		}
		if out.Win != want.Win || out.Load0 != want.Load0 || out.Load1 != want.Load1 {
			t.Fatalf("trial %d: PlayInto %+v, Play %+v", i, out, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := sys.SampleInputsInto(inputs, a); err != nil {
			t.Fatal(err)
		}
		if err := sys.PlayInto(&out, inputs, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state SampleInputsInto+PlayInto allocates %v times per trial, want 0", allocs)
	}
	if err := sys.PlayInto(nil, inputs, a); err == nil {
		t.Error("nil outcome: expected error")
	}
	if err := sys.SampleInputsInto(inputs[:1], a); err == nil {
		t.Error("short buffer: expected error")
	}
	if err := sys.SampleInputsInto(inputs, nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

// rawSource hides a source's concrete type so tests can force the
// interface-draw paths (fillSrc / playFusedSrc).
type rawSource struct{ s rand.Source }

func (r rawSource) Uint64() uint64 { return r.s.Uint64() }

// playSrcSystems builds one system per kernel path: the pure-threshold
// register loop, the banded register loop, the lane path with coins, and
// the heterogeneous variants.
func playSrcSystems(t *testing.T) map[string]*System {
	t.Helper()
	thr, _ := NewThresholdRule(0.622)
	obl, _ := NewObliviousRule(0.37)
	band, err := NewIntervalUnionRule("band", []float64{0.2}, []float64{0.45})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewIntervalUnionRule("multi", []float64{0.1, 0.6}, []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	always, _ := NewObliviousRule(0) // degenerate: every trial to bin 1
	sys := map[string]*System{}
	var e error
	add := func(name string, s *System, err error) {
		if err != nil {
			e = err
			return
		}
		sys[name] = s
	}
	s, err := NewSystem([]LocalRule{thr, thr, thr}, 1)
	add("threshold", s, err)
	s, err = NewSystem([]LocalRule{thr, band, always}, 1.2)
	add("banded", s, err)
	s, err = NewSystem([]LocalRule{thr, obl, band, multi}, 1.2)
	add("coins+generic", s, err)
	s, err = NewSystemPi([]LocalRule{thr, thr, thr}, 1, []float64{0.5, 1, 0.75})
	add("threshold-pi", s, err)
	s, err = NewSystemPi([]LocalRule{thr, obl, band}, 1, []float64{0.5, 1, 0.75})
	add("mixed-pi", s, err)
	if e != nil {
		t.Fatal(e)
	}
	return sys
}

// TestPlaySrcMatchesPlay pins the bit-identity of every PlaySrc
// specialization (fused threshold, fused band, lane path; PCG-concrete
// and interface sources) against the reference Play over the same
// stream: identical win flags, counts, and final source state.
func TestPlaySrcMatchesPlay(t *testing.T) {
	const b = 777
	for name, sys := range playSrcSystems(t) {
		k, ok := NewBatchKernel(sys)
		if !ok {
			t.Fatalf("%s: expected batch kernel", name)
		}
		ref := GetBatchScratch()
		refWins := k.Play(ref, testRNG(7), b)
		refFlags := append([]bool(nil), ref.Wins()[:b]...)
		ref.Release()

		for _, src := range []struct {
			label string
			src   rand.Source
		}{
			{"pcg", rand.NewPCG(7, 7^0x94d049bb133111eb)},
			{"interface", rawSource{rand.NewPCG(7, 7^0x94d049bb133111eb)}},
		} {
			sc := GetBatchScratch()
			wins := k.PlaySrc(sc, src.src, b)
			if wins != refWins {
				t.Errorf("%s/%s: PlaySrc wins %d, Play wins %d", name, src.label, wins, refWins)
			}
			for i := range refFlags {
				if sc.Wins()[i] != refFlags[i] {
					t.Fatalf("%s/%s: trial %d flag %v, want %v", name, src.label, i, sc.Wins()[i], refFlags[i])
				}
			}
			sc.Release()
			// Both paths must leave the stream in the same state.
			want := testRNG(7)
			for i := 0; i < b*k.Dims(); i++ {
				want.Float64()
			}
			if a, bb := src.src.Uint64(), want.Uint64(); a != bb {
				t.Errorf("%s/%s: stream diverged after play: %x vs %x", name, src.label, a, bb)
			}
		}
	}
}

// TestBatchScratchMixedSizes pins the satellite fix: once a scratch has
// seen the widest instance and the largest batch of a sweep, playing any
// smaller (players, batch) mix re-slices the same slab — no per-width
// re-allocation.
func TestBatchScratchMixedSizes(t *testing.T) {
	thr, _ := NewThresholdRule(0.5)
	obl, _ := NewObliviousRule(0.37)
	kernels := []*BatchKernel{}
	for _, n := range []int{3, 8, 20} {
		sys, err := UniformSystem(n, obl, float64(n)/3)
		if err != nil {
			t.Fatal(err)
		}
		k, ok := NewBatchKernel(sys)
		if !ok {
			t.Fatal("expected batch kernel")
		}
		kernels = append(kernels, k)
		sysT, err := UniformSystem(n, thr, float64(n)/3)
		if err != nil {
			t.Fatal(err)
		}
		kT, ok := NewBatchKernel(sysT)
		if !ok {
			t.Fatal("expected batch kernel")
		}
		kernels = append(kernels, kT)
	}
	sc := GetBatchScratch()
	defer sc.Release()
	rng := testRNG(3)
	// Warm with the widest lane demand and the largest batch once.
	kernels[len(kernels)-2].Play(sc, rng, 777)
	allocs := testing.AllocsPerRun(5, func() {
		for _, k := range kernels {
			for _, b := range []int{100, 256, 777} {
				k.Play(sc, rng, b)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("mixed-size sweep allocates %v times per pass, want 0", allocs)
	}
}

// fillSampler is a deterministic LaneSampler stub: coordinate value
// depends only on (dim, index), so tests can predict PlayQMC's inputs.
type fillSampler struct{}

func (fillSampler) Fill(dst []float64, dim int, start uint64, count int) {
	for i := 0; i < count; i++ {
		u := (start + uint64(i)) * 2654435761 % 997
		v := (uint64(dim+1) * 40503 % 499)
		dst[i] = float64((u*499+v)%(997*499)) / (997 * 499)
	}
}

// TestPlayQMCMatchesPerTrial checks the QMC entry against a hand-rolled
// per-trial evaluation on the same deterministic point set, including a
// coin player and heterogeneous widths, across chunk boundaries.
func TestPlayQMCMatchesPerTrial(t *testing.T) {
	thr, _ := NewThresholdRule(0.4)
	obl, _ := NewObliviousRule(0.37)
	band, err := NewIntervalUnionRule("band", []float64{0.2}, []float64{0.45})
	if err != nil {
		t.Fatal(err)
	}
	widths := []float64{0.5, 1, 0.75}
	sys, err := NewSystemPi([]LocalRule{thr, obl, band}, 1, widths)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := NewBatchKernel(sys)
	if !ok {
		t.Fatal("expected batch kernel")
	}
	if k.Dims() != 4 {
		t.Fatalf("dims = %d, want 4 (3 inputs + 1 coin)", k.Dims())
	}
	const start, b = 123, 777
	sc := GetBatchScratch()
	defer sc.Release()
	wins := k.PlayQMC(sc, fillSampler{}, start, b)

	want := 0
	buf := make([]float64, 1)
	for i := 0; i < b; i++ {
		idx := uint64(start + i)
		var x [3]float64
		for d := 0; d < 3; d++ {
			fillSampler{}.Fill(buf, d, idx, 1)
			x[d] = buf[0] * widths[d]
		}
		fillSampler{}.Fill(buf, 3, idx, 1)
		coin := buf[0]
		l0, l1 := 0.0, 0.0
		// player 0: threshold; player 1: oblivious coin; player 2: band.
		if x[0] > 0.4 {
			l1 += x[0]
		} else {
			l0 += x[0]
		}
		if coin >= 0.37 {
			l1 += x[1]
		} else {
			l0 += x[1]
		}
		if x[2] >= 0.2 && x[2] <= 0.45 {
			l0 += x[2]
		} else {
			l1 += x[2]
		}
		win := l0 <= 1 && l1 <= 1
		if win != sc.Wins()[i] {
			t.Fatalf("trial %d: PlayQMC win %v, reference %v", i, sc.Wins()[i], win)
		}
		if win {
			want++
		}
	}
	if wins != want {
		t.Fatalf("PlayQMC wins %d, reference %d", wins, want)
	}
}

// TestPlaySrcAndQMCAllocationFree extends the zero-allocation guard to
// the new kernel entries (satellite: lane kernel + QMC sampler at 0
// allocs/op steady state).
func TestPlaySrcAndQMCAllocationFree(t *testing.T) {
	thr, _ := NewThresholdRule(0.622)
	obl, _ := NewObliviousRule(0.37)
	sys, err := NewSystem([]LocalRule{thr, obl, thr}, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := NewBatchKernel(sys)
	if !ok {
		t.Fatal("expected batch kernel")
	}
	src := rand.NewPCG(9, 9)
	sc := GetBatchScratch()
	defer sc.Release()
	k.PlaySrc(sc, src, 256)
	if allocs := testing.AllocsPerRun(10, func() {
		k.PlaySrc(sc, src, 256)
	}); allocs != 0 {
		t.Errorf("steady-state PlaySrc allocates %v times per batch, want 0", allocs)
	}
	k.PlayQMC(sc, fillSampler{}, 0, 256)
	var at uint64
	if allocs := testing.AllocsPerRun(10, func() {
		k.PlayQMC(sc, fillSampler{}, at, 256)
		at += 256
	}); allocs != 0 {
		t.Errorf("steady-state PlayQMC allocates %v times per batch, want 0", allocs)
	}
}
