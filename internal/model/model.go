// Package model defines the distributed decision-making model of Section 3
// of the paper: n players, each receiving a private input uniform on
// [0, π_i] (π_i = 1 for every player in the paper's homogeneous game),
// each choosing one of two bins of capacity δ with no communication, and
// the system "winning" when neither bin overflows.
//
// A LocalRule is the paper's (local) decision-making algorithm A_i in the
// no-communication case: a (possibly randomized) map from the player's own
// input to a bin. The package supplies the two families the paper analyses
// — oblivious coin rules and single-threshold rules — plus arbitrary
// deterministic rules, and the machinery to evaluate a full system on an
// input vector.
package model

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Bin identifies one of the two available bins.
type Bin int

// The two bins of the load-balancing game.
const (
	Bin0 Bin = 0
	Bin1 Bin = 1
)

// String returns "0" or "1".
func (b Bin) String() string {
	if b == Bin0 {
		return "0"
	}
	return "1"
}

// Other returns the opposite bin.
func (b Bin) Other() Bin {
	if b == Bin0 {
		return Bin1
	}
	return Bin0
}

// LocalRule is a player's local decision algorithm in the no-communication
// case: it sees only the player's own input. Randomized rules draw from
// rng, which is non-nil whenever the rule is invoked through System.
type LocalRule interface {
	// Decide maps the player's input to a bin choice.
	Decide(input float64, rng *rand.Rand) (Bin, error)
}

// ObliviousRule ignores the input and selects Bin0 with probability P0
// (the paper's α_i). It is the paper's oblivious algorithm for one player.
type ObliviousRule struct {
	// P0 is the probability of choosing Bin0.
	P0 float64
}

// NewObliviousRule validates P0 ∈ [0, 1] and returns the rule.
func NewObliviousRule(p0 float64) (ObliviousRule, error) {
	if math.IsNaN(p0) || p0 < 0 || p0 > 1 {
		return ObliviousRule{}, fmt.Errorf("model: oblivious probability %v outside [0, 1]", p0)
	}
	return ObliviousRule{P0: p0}, nil
}

// Decide implements LocalRule. It returns an error when the rule is
// strictly randomized (0 < P0 < 1) and rng is nil.
func (r ObliviousRule) Decide(_ float64, rng *rand.Rand) (Bin, error) {
	switch {
	case r.P0 <= 0:
		return Bin1, nil
	case r.P0 >= 1:
		return Bin0, nil
	case rng == nil:
		return 0, fmt.Errorf("model: randomized oblivious rule needs a random source")
	case rng.Float64() < r.P0:
		return Bin0, nil
	default:
		return Bin1, nil
	}
}

// ThresholdRule is the paper's single-threshold non-oblivious algorithm:
// it selects Bin0 when the input is at most Threshold (the paper's a_i) and
// Bin1 otherwise.
type ThresholdRule struct {
	// Threshold is the cut point in [0, 1].
	Threshold float64
}

// NewThresholdRule validates the threshold ∈ [0, 1] and returns the rule.
// (The paper allows thresholds beyond 1, but with U[0,1] inputs any
// threshold ≥ 1 behaves identically to 1, so the constructor normalizes
// the domain.)
func NewThresholdRule(threshold float64) (ThresholdRule, error) {
	if math.IsNaN(threshold) || threshold < 0 || threshold > 1 {
		return ThresholdRule{}, fmt.Errorf("model: threshold %v outside [0, 1]", threshold)
	}
	return ThresholdRule{Threshold: threshold}, nil
}

// Decide implements LocalRule.
func (r ThresholdRule) Decide(input float64, _ *rand.Rand) (Bin, error) {
	if input <= r.Threshold {
		return Bin0, nil
	}
	return Bin1, nil
}

// FuncRule wraps an arbitrary deterministic decision function, giving the
// framework the paper's full generality ("any computable function of the
// inputs it sees").
type FuncRule struct {
	name string
	fn   func(input float64) Bin
}

// NewFuncRule wraps fn under the given name. It returns an error if fn is
// nil.
func NewFuncRule(name string, fn func(input float64) Bin) (FuncRule, error) {
	if fn == nil {
		return FuncRule{}, fmt.Errorf("model: nil decision function %q", name)
	}
	return FuncRule{name: name, fn: fn}, nil
}

// Name returns the rule's label.
func (r FuncRule) Name() string { return r.name }

// Decide implements LocalRule.
func (r FuncRule) Decide(input float64, _ *rand.Rand) (Bin, error) {
	return r.fn(input), nil
}

// Compile-time interface compliance checks.
var (
	_ LocalRule = ObliviousRule{}
	_ LocalRule = ThresholdRule{}
	_ LocalRule = FuncRule{}
)

// System is an n-player no-communication decision-making instance: one
// LocalRule per player, a common bin capacity δ, and per-player input
// ranges (player i's input is uniform on [0, widths[i]]). A nil widths
// slice is the homogeneous U[0, 1] game and takes exactly the code paths
// the system took before heterogeneous ranges existed.
type System struct {
	rules    []LocalRule
	capacity float64
	// widths holds the per-player input ranges π_i; nil means homogeneous
	// U[0, 1]. Constructors canonicalize an all-ones slice to nil.
	widths []float64
}

// NewSystem builds a homogeneous-input system from per-player rules and
// the bin capacity δ. At least two players are required (matching the
// paper's n ≥ 2), every rule must be non-nil, and the capacity must be
// strictly positive.
func NewSystem(rules []LocalRule, capacity float64) (*System, error) {
	return NewSystemPi(rules, capacity, nil)
}

// NewSystemPi builds a system with per-player input ranges: player i's
// input is uniform on [0, widths[i]]. A nil or empty widths slice selects
// the homogeneous U[0, 1] game; otherwise widths must have one strictly
// positive finite entry per rule. An all-ones widths slice is
// canonicalized to the homogeneous game, so homogeneous results stay
// bit-identical however the instance was spelled.
func NewSystemPi(rules []LocalRule, capacity float64, widths []float64) (*System, error) {
	if len(rules) < 2 {
		return nil, fmt.Errorf("model: need at least 2 players, got %d", len(rules))
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return nil, fmt.Errorf("model: capacity %v must be strictly positive and finite", capacity)
	}
	cp := make([]LocalRule, len(rules))
	for i, r := range rules {
		if r == nil {
			return nil, fmt.Errorf("model: nil rule for player %d", i)
		}
		cp[i] = r
	}
	sys := &System{rules: cp, capacity: capacity}
	if len(widths) > 0 {
		if len(widths) != len(rules) {
			return nil, fmt.Errorf("model: %d input ranges for %d players", len(widths), len(rules))
		}
		hetero := false
		for i, w := range widths {
			if !(w > 0) || math.IsInf(w, 1) {
				return nil, fmt.Errorf("model: input range π[%d] = %v must be strictly positive and finite", i, w)
			}
			if w != 1 {
				hetero = true
			}
		}
		if hetero {
			sys.widths = append([]float64(nil), widths...)
		}
	}
	return sys, nil
}

// UniformSystem builds a homogeneous-input system in which every player
// runs the same rule.
func UniformSystem(n int, rule LocalRule, capacity float64) (*System, error) {
	return UniformSystemPi(n, rule, capacity, nil)
}

// UniformSystemPi builds a system in which every player runs the same
// rule, with per-player input ranges as in NewSystemPi.
func UniformSystemPi(n int, rule LocalRule, capacity float64, widths []float64) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("model: need at least 2 players, got %d", n)
	}
	rules := make([]LocalRule, n)
	for i := range rules {
		rules[i] = rule
	}
	return NewSystemPi(rules, capacity, widths)
}

// N returns the number of players.
func (s *System) N() int { return len(s.rules) }

// Capacity returns the bin capacity δ.
func (s *System) Capacity() float64 { return s.capacity }

// InputWidth returns player i's input range π_i (1 for homogeneous
// systems and out-of-range indices).
func (s *System) InputWidth(i int) float64 {
	if i >= 0 && i < len(s.widths) {
		return s.widths[i]
	}
	return 1
}

// Heterogeneous reports whether some player's input range differs from 1.
func (s *System) Heterogeneous() bool { return s.widths != nil }

// Rule returns player i's rule. It returns an error for an out-of-range
// index.
func (s *System) Rule(i int) (LocalRule, error) {
	if i < 0 || i >= len(s.rules) {
		return nil, fmt.Errorf("model: player index %d out of range [0, %d)", i, len(s.rules))
	}
	return s.rules[i], nil
}

// Outcome is the result of playing one round.
type Outcome struct {
	// Decisions holds each player's bin choice.
	Decisions []Bin
	// Load0 and Load1 are the total inputs placed in each bin (the paper's
	// Σ_0 and Σ_1).
	Load0, Load1 float64
	// Win reports whether neither bin overflowed: Σ_0 ≤ δ and Σ_1 ≤ δ.
	Win bool
}

// Play evaluates the system on the given input vector. inputs must have
// one entry per player, each in the player's input range [0, π_i]
// ([0, 1] for homogeneous systems). rng is passed to randomized rules
// and may be nil when all rules are deterministic.
func (s *System) Play(inputs []float64, rng *rand.Rand) (Outcome, error) {
	var out Outcome
	if err := s.PlayInto(&out, inputs, rng); err != nil {
		return Outcome{}, err
	}
	return out, nil
}

// PlayInto evaluates the system like Play but writes the result into a
// caller-owned Outcome, reusing its Decisions buffer when it has capacity.
// A worker that keeps one Outcome across trials plays allocation-free.
func (s *System) PlayInto(out *Outcome, inputs []float64, rng *rand.Rand) error {
	if out == nil {
		return fmt.Errorf("model: nil outcome")
	}
	if len(inputs) != len(s.rules) {
		return fmt.Errorf("model: %d inputs for %d players", len(inputs), len(s.rules))
	}
	if cap(out.Decisions) < len(inputs) {
		out.Decisions = make([]Bin, len(inputs))
	} else {
		out.Decisions = out.Decisions[:len(inputs)]
	}
	out.Load0, out.Load1, out.Win = 0, 0, false
	for i, x := range inputs {
		if w := s.InputWidth(i); math.IsNaN(x) || x < 0 || x > w {
			return fmt.Errorf("model: input %d = %v outside [0, %v]", i, x, w)
		}
		bin, err := s.rules[i].Decide(x, rng)
		if err != nil {
			return fmt.Errorf("model: player %d decision failed: %w", i, err)
		}
		if bin != Bin0 && bin != Bin1 {
			return fmt.Errorf("model: player %d chose invalid bin %d", i, bin)
		}
		out.Decisions[i] = bin
		if bin == Bin0 {
			out.Load0 += x
		} else {
			out.Load1 += x
		}
	}
	out.Win = out.Load0 <= s.capacity && out.Load1 <= s.capacity
	return nil
}

// SampleInputs draws one input vector for the system's n players, each
// uniform on the player's range [0, π_i]. It returns an error if rng is
// nil.
func (s *System) SampleInputs(rng *rand.Rand) ([]float64, error) {
	inputs := make([]float64, len(s.rules))
	if err := s.SampleInputsInto(inputs, rng); err != nil {
		return nil, err
	}
	return inputs, nil
}

// SampleInputsInto fills the caller-owned dst (one slot per player) with
// an input vector, drawing one rng.Float64 per player in player order —
// the same draw count and order as SampleInputs (and as the batch
// kernel), so all sampling paths are interchangeable on a fixed stream.
// For heterogeneous systems each draw is scaled to the player's range.
func (s *System) SampleInputsInto(dst []float64, rng *rand.Rand) error {
	if rng == nil {
		return fmt.Errorf("model: nil random source")
	}
	if len(dst) != len(s.rules) {
		return fmt.Errorf("model: %d input slots for %d players", len(dst), len(s.rules))
	}
	if s.widths == nil {
		for i := range dst {
			dst[i] = rng.Float64()
		}
		return nil
	}
	for i := range dst {
		dst[i] = rng.Float64() * s.widths[i]
	}
	return nil
}

// FeasibleAssignmentExists reports whether some assignment of the given
// inputs to the two bins keeps both bins within capacity. This is the
// omniscient (full-information, centralized) benchmark: no distributed
// algorithm can win on an input vector for which it is false. The check
// enumerates all 2^(n-1) essentially distinct assignments, so it is meant
// for the small n used in the paper's experiments.
func FeasibleAssignmentExists(inputs []float64, capacity float64) (bool, error) {
	n := len(inputs)
	if n == 0 {
		return true, nil
	}
	if n > 30 {
		return false, fmt.Errorf("model: feasibility check limited to 30 players, got %d", n)
	}
	if !(capacity > 0) {
		return false, fmt.Errorf("model: capacity %v must be strictly positive", capacity)
	}
	var total float64
	for i, x := range inputs {
		if math.IsNaN(x) || x < 0 {
			return false, fmt.Errorf("model: input %d = %v invalid", i, x)
		}
		total += x
	}
	if total > 2*capacity {
		return false, nil
	}
	// Fix player 0 in bin 0 (by symmetry) and enumerate the rest.
	half := uint64(1) << uint(n-1)
	for mask := uint64(0); mask < half; mask++ {
		var load0 float64 = inputs[0]
		for i := 1; i < n; i++ {
			if mask&(1<<uint(i-1)) == 0 {
				load0 += inputs[i]
			}
		}
		if load0 <= capacity && total-load0 <= capacity {
			return true, nil
		}
	}
	return false, nil
}
