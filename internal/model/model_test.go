package model

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBinBasics(t *testing.T) {
	if Bin0.String() != "0" || Bin1.String() != "1" {
		t.Error("Bin String wrong")
	}
	if Bin0.Other() != Bin1 || Bin1.Other() != Bin0 {
		t.Error("Bin Other wrong")
	}
}

func TestNewObliviousRuleValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewObliviousRule(bad); err == nil {
			t.Errorf("P0=%v: expected error", bad)
		}
	}
	for _, ok := range []float64{0, 0.5, 1} {
		if _, err := NewObliviousRule(ok); err != nil {
			t.Errorf("P0=%v: unexpected error", ok)
		}
	}
}

func TestObliviousRuleDeterministicEndpoints(t *testing.T) {
	always0, err := NewObliviousRule(1)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := always0.Decide(0.9, nil); err != nil || b != Bin0 {
		t.Errorf("P0=1 Decide = %v, %v; want Bin0", b, err)
	}
	always1, err := NewObliviousRule(0)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := always1.Decide(0.1, nil); err != nil || b != Bin1 {
		t.Errorf("P0=0 Decide = %v, %v; want Bin1", b, err)
	}
}

func TestObliviousRuleRandomizedNeedsRNG(t *testing.T) {
	r, err := NewObliviousRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decide(0.5, nil); err == nil {
		t.Error("randomized rule with nil rng: expected error")
	}
}

func TestObliviousRuleFrequency(t *testing.T) {
	r, err := NewObliviousRule(0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 100000
	zeros := 0
	for i := 0; i < n; i++ {
		b, err := r.Decide(0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if b == Bin0 {
			zeros++
		}
	}
	if got := float64(zeros) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("empirical P(Bin0) = %v, want ≈ 0.3", got)
	}
}

func TestObliviousRuleIgnoresInputProperty(t *testing.T) {
	// Same RNG state and different inputs must give the same decision.
	f := func(x1, x2 uint16, seed uint64) bool {
		r, err := NewObliviousRule(0.5)
		if err != nil {
			return false
		}
		rngA := rand.New(rand.NewPCG(seed, 1))
		rngB := rand.New(rand.NewPCG(seed, 1))
		a, errA := r.Decide(float64(x1)/65535, rngA)
		b, errB := r.Decide(float64(x2)/65535, rngB)
		return errA == nil && errB == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewThresholdRuleValidation(t *testing.T) {
	for _, bad := range []float64{-0.01, 1.01, math.NaN()} {
		if _, err := NewThresholdRule(bad); err == nil {
			t.Errorf("threshold %v: expected error", bad)
		}
	}
}

func TestThresholdRuleDecisions(t *testing.T) {
	r, err := NewThresholdRule(0.622)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want Bin
	}{
		{0, Bin0},
		{0.622, Bin0}, // boundary goes to Bin0 (x ≤ a)
		{0.623, Bin1},
		{1, Bin1},
	}
	for _, c := range cases {
		got, err := r.Decide(c.x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestFuncRule(t *testing.T) {
	if _, err := NewFuncRule("nil", nil); err == nil {
		t.Error("nil function: expected error")
	}
	// A deliberately non-threshold rule: middle band to Bin0.
	r, err := NewFuncRule("band", func(x float64) Bin {
		if x > 0.25 && x < 0.75 {
			return Bin0
		}
		return Bin1
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "band" {
		t.Errorf("Name = %q", r.Name())
	}
	if b, _ := r.Decide(0.5, nil); b != Bin0 {
		t.Error("band rule middle should be Bin0")
	}
	if b, _ := r.Decide(0.9, nil); b != Bin1 {
		t.Error("band rule edge should be Bin1")
	}
}

func TestNewSystemValidation(t *testing.T) {
	th, err := NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem([]LocalRule{th}, 1); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := NewSystem([]LocalRule{th, nil}, 1); err == nil {
		t.Error("nil rule: expected error")
	}
	if _, err := NewSystem([]LocalRule{th, th}, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := NewSystem([]LocalRule{th, th}, math.Inf(1)); err == nil {
		t.Error("infinite capacity: expected error")
	}
	s, err := NewSystem([]LocalRule{th, th, th}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 || s.Capacity() != 1.5 {
		t.Errorf("N=%d capacity=%v", s.N(), s.Capacity())
	}
	got, err := s.Rule(2)
	if err != nil || got == nil {
		t.Errorf("Rule(2) = %v, %v", got, err)
	}
	if _, err := s.Rule(3); err == nil {
		t.Error("out-of-range rule index: expected error")
	}
	if _, err := s.Rule(-1); err == nil {
		t.Error("negative rule index: expected error")
	}
}

func TestUniformSystem(t *testing.T) {
	th, err := NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := UniformSystem(5, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if _, err := UniformSystem(1, th, 1); err == nil {
		t.Error("n=1: expected error")
	}
}

func TestSystemPlayThresholds(t *testing.T) {
	// Three players with threshold 0.5, capacity 1.
	th, err := NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := UniformSystem(3, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs 0.2, 0.3, 0.8: bin0 gets 0.5, bin1 gets 0.8 → win.
	out, err := s.Play([]float64{0.2, 0.3, 0.8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Win {
		t.Error("expected a win")
	}
	if math.Abs(out.Load0-0.5) > 1e-15 || math.Abs(out.Load1-0.8) > 1e-15 {
		t.Errorf("loads = %v, %v", out.Load0, out.Load1)
	}
	wantDec := []Bin{Bin0, Bin0, Bin1}
	for i, d := range out.Decisions {
		if d != wantDec[i] {
			t.Errorf("decision %d = %v, want %v", i, d, wantDec[i])
		}
	}
	// Inputs 0.4, 0.4, 0.45: bin0 gets 1.25 → overflow.
	out, err = s.Play([]float64{0.4, 0.4, 0.45}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Win {
		t.Error("expected an overflow loss")
	}
}

func TestSystemPlayValidation(t *testing.T) {
	th, err := NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := UniformSystem(2, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Play([]float64{0.1}, nil); err == nil {
		t.Error("wrong input count: expected error")
	}
	if _, err := s.Play([]float64{0.1, 1.5}, nil); err == nil {
		t.Error("out-of-range input: expected error")
	}
	if _, err := s.Play([]float64{0.1, math.NaN()}, nil); err == nil {
		t.Error("NaN input: expected error")
	}
	// Randomized rule with nil rng surfaces the rule error.
	ob, err := NewObliviousRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := UniformSystem(2, ob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Play([]float64{0.1, 0.2}, nil); err == nil {
		t.Error("randomized system with nil rng: expected error")
	}
}

func TestSystemSampleInputs(t *testing.T) {
	th, err := NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := UniformSystem(4, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleInputs(nil); err == nil {
		t.Error("nil rng: expected error")
	}
	rng := rand.New(rand.NewPCG(5, 6))
	inputs, err := s.SampleInputs(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 4 {
		t.Fatalf("got %d inputs, want 4", len(inputs))
	}
	for i, x := range inputs {
		if x < 0 || x >= 1 {
			t.Errorf("input %d = %v outside [0, 1)", i, x)
		}
	}
}

func TestFeasibleAssignmentExists(t *testing.T) {
	cases := []struct {
		inputs   []float64
		capacity float64
		want     bool
	}{
		{[]float64{0.5, 0.5, 0.5}, 1, true},   // 2-1 split works
		{[]float64{0.9, 0.9, 0.9}, 1, false},  // any 2 together overflow
		{[]float64{0.9, 0.9, 0.9}, 1.8, true}, // larger capacity
		{[]float64{1, 1}, 1, true},            // one per bin
		{[]float64{1, 1, 0.1}, 1, false},      // the 0.1 breaks a bin
		{[]float64{}, 1, true},                // vacuous
		{[]float64{0.4}, 1, true},
	}
	for _, c := range cases {
		got, err := FeasibleAssignmentExists(c.inputs, c.capacity)
		if err != nil {
			t.Fatalf("FeasibleAssignmentExists(%v, %v): %v", c.inputs, c.capacity, err)
		}
		if got != c.want {
			t.Errorf("FeasibleAssignmentExists(%v, %v) = %v, want %v", c.inputs, c.capacity, got, c.want)
		}
	}
}

func TestFeasibleAssignmentValidation(t *testing.T) {
	if _, err := FeasibleAssignmentExists([]float64{0.5}, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := FeasibleAssignmentExists([]float64{-0.5}, 1); err == nil {
		t.Error("negative input: expected error")
	}
	if _, err := FeasibleAssignmentExists(make([]float64, 31), 1); err == nil {
		t.Error("too many players: expected error")
	}
}

func TestFeasibilityDominatesAnySystemProperty(t *testing.T) {
	// Property: whenever a threshold system wins, a feasible assignment
	// exists (the omniscient benchmark dominates every algorithm).
	th, err := NewThresholdRule(0.622)
	if err != nil {
		t.Fatal(err)
	}
	s, err := UniformSystem(3, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint16) bool {
		inputs := []float64{float64(a) / 65536, float64(b) / 65536, float64(c) / 65536}
		out, err := s.Play(inputs, nil)
		if err != nil {
			return false
		}
		feasible, err := FeasibleAssignmentExists(inputs, 1)
		if err != nil {
			return false
		}
		return !out.Win || feasible
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
