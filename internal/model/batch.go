package model

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// This file is the zero-allocation batch layer of the model: BatchRule
// lets a rule decide many trials in one call (no per-player interface
// dispatch inside the Monte-Carlo hot loop), BatchScratch pools the
// per-worker lane buffers, and BatchKernel samples and plays batches of
// trials as fused, branch-free lane loops.
//
// The load-bearing invariant is RNG draw order: for every trial the
// kernel draws the n inputs first and then one coin per strictly
// randomized player in ascending player order — exactly the sequence
// SampleInputs + Play consumes — so for a fixed stream the batched and
// per-trial paths produce bit-identical outcomes.
//
// Layout: scratch lanes are fixed BatchSize-wide columns in one flat
// slab, column-major — player i's inputs live in column i, coin column c
// in column n+c. A Play of any batch size works the slab in chunks of at
// most BatchSize trials, so the slab is sized once for the widest system
// seen and re-sliced thereafter (mixed-size sweeps stop re-allocating).
// At kernel construction every player's rule is classified into a fused
// lane op (threshold, coin compare, constant, band) whose decide and
// load accumulation run in a single pass over the column with arithmetic
// selects instead of per-trial branches; rules outside the known set
// keep the generic DecideBatch path.

// BatchSize is the lane width of the batch kernel: every scratch column
// holds this many trials, and larger plays are chunked internally. 256
// float64 lanes (2 KiB per column) keep a whole small-n system resident
// in L1 while amortizing loop overhead.
const BatchSize = 256

// BatchRule is implemented by rules that can decide a whole batch of
// trials in one call. The Monte-Carlo engine uses it to skip the
// per-player interface dispatch (and error plumbing) of Decide inside the
// hot loop; rules that do not implement it fall back to the per-trial
// path.
type BatchRule interface {
	LocalRule
	// CoinDraws reports how many rng.Float64 coin draws one Decide call
	// consumes: 0 for deterministic rules, 1 for strictly randomized
	// ones. The batch kernel pre-draws exactly this many coins per trial,
	// in the per-trial order, and passes them through DecideBatch's coins
	// argument — this is what keeps batched RNG streams bit-identical to
	// the per-trial path.
	CoinDraws() int
	// DecideBatch maps inputs[k] (and, when CoinDraws is 1, coins[k]) to
	// out[k] for every k. All slices have equal length; coins is nil when
	// CoinDraws is 0. Implementations must be equivalent to calling
	// Decide once per element with the matching coin as the rng draw.
	DecideBatch(inputs, coins []float64, out []Bin)
}

// LaneSampler is the point source a quasi-Monte-Carlo play draws from:
// Fill writes coordinate dim of points start..start+count-1 into
// dst[:count], each value in [0, 1). Implemented by *qrand.Sequence.
// The kernel uses dimension i < n for player i's input and dimension
// n+c for coin column c.
type LaneSampler interface {
	Fill(dst []float64, dim int, start uint64, count int)
}

// CoinDraws implements BatchRule: a strictly randomized oblivious rule
// consumes one coin per decision, the degenerate 0/1 rules none (Decide
// returns before touching rng).
func (r ObliviousRule) CoinDraws() int {
	if r.P0 > 0 && r.P0 < 1 {
		return 1
	}
	return 0
}

// DecideBatch implements BatchRule.
func (r ObliviousRule) DecideBatch(_, coins []float64, out []Bin) {
	switch {
	case r.P0 <= 0:
		for k := range out {
			out[k] = Bin1
		}
	case r.P0 >= 1:
		for k := range out {
			out[k] = Bin0
		}
	default:
		p0 := r.P0
		for k, c := range coins {
			v := Bin0
			if c >= p0 {
				v = Bin1
			}
			out[k] = v
		}
	}
}

// CoinDraws implements BatchRule: threshold rules are deterministic.
func (r ThresholdRule) CoinDraws() int { return 0 }

// DecideBatch implements BatchRule. The conditional assigns a constant,
// which compiles to a branch-free conditional move — the comparison
// outcome is data-dependent and would otherwise mispredict constantly.
func (r ThresholdRule) DecideBatch(inputs, _ []float64, out []Bin) {
	th := r.Threshold
	for k, x := range inputs {
		v := Bin0
		if x > th {
			v = Bin1
		}
		out[k] = v
	}
}

// IntervalUnionRule is the deterministic rule whose bin-0 region is a
// finite union of disjoint closed intervals, stored flattened for a
// cache-friendly scan. It is the batched counterpart of wrapping an
// interval set in a FuncRule, and the rule type response.IntervalSet
// lowers to.
type IntervalUnionRule struct {
	name string
	los  []float64
	his  []float64
}

// NewIntervalUnionRule builds the rule from interval endpoints
// (los[j], his[j] bound the j-th interval). Intervals must satisfy
// 0 ≤ lo ≤ hi ≤ 1 and be sorted and disjoint. An empty union is valid
// (the rule always chooses bin 1).
func NewIntervalUnionRule(name string, los, his []float64) (IntervalUnionRule, error) {
	if len(los) != len(his) {
		return IntervalUnionRule{}, fmt.Errorf("model: %d interval starts for %d ends", len(los), len(his))
	}
	cl := append([]float64(nil), los...)
	ch := append([]float64(nil), his...)
	for j := range cl {
		if math.IsNaN(cl[j]) || math.IsNaN(ch[j]) || cl[j] < 0 || ch[j] > 1 || cl[j] > ch[j] {
			return IntervalUnionRule{}, fmt.Errorf("model: invalid interval [%v, %v]", cl[j], ch[j])
		}
		if j > 0 && cl[j] <= ch[j-1] {
			return IntervalUnionRule{}, fmt.Errorf("model: intervals [%v, %v] and [%v, %v] out of order or overlapping",
				cl[j-1], ch[j-1], cl[j], ch[j])
		}
	}
	if !sort.Float64sAreSorted(cl) {
		return IntervalUnionRule{}, fmt.Errorf("model: interval starts not sorted")
	}
	return IntervalUnionRule{name: name, los: cl, his: ch}, nil
}

// Name returns the rule's label.
func (r IntervalUnionRule) Name() string { return r.name }

// Contains reports whether x lies in the bin-0 region.
func (r IntervalUnionRule) Contains(x float64) bool {
	for j, lo := range r.los {
		if x < lo {
			return false
		}
		if x <= r.his[j] {
			return true
		}
	}
	return false
}

// Decide implements LocalRule.
func (r IntervalUnionRule) Decide(input float64, _ *rand.Rand) (Bin, error) {
	if r.Contains(input) {
		return Bin0, nil
	}
	return Bin1, nil
}

// CoinDraws implements BatchRule: interval rules are deterministic.
func (r IntervalUnionRule) CoinDraws() int { return 0 }

// DecideBatch implements BatchRule.
func (r IntervalUnionRule) DecideBatch(inputs, _ []float64, out []Bin) {
	if len(r.los) == 1 {
		// Single interval (bands, thresholds): branch-light fast path.
		lo, hi := r.los[0], r.his[0]
		for k, x := range inputs {
			if x >= lo && x <= hi {
				out[k] = Bin0
			} else {
				out[k] = Bin1
			}
		}
		return
	}
	for k, x := range inputs {
		if r.Contains(x) {
			out[k] = Bin0
		} else {
			out[k] = Bin1
		}
	}
}

// Compile-time interface compliance checks for the batch layer.
var (
	_ BatchRule = ObliviousRule{}
	_ BatchRule = ThresholdRule{}
	_ BatchRule = IntervalUnionRule{}
	_ LocalRule = IntervalUnionRule{}
)

// BatchScratch holds the reusable lane buffers one worker needs to sample
// and play batches of trials. The lane slab is sized to the widest system
// the scratch has seen and re-sliced per play (never re-pooled per
// width), so a steady-state worker loop — even one sweeping mixed
// instance sizes — performs zero allocations per trial.
type BatchScratch struct {
	// lanes is one flat slab of (n + coinCols) columns, each BatchSize
	// wide, column-major: column i < n holds player i's inputs for the
	// current chunk, column n+c holds coin column c. Grows monotonically.
	lanes []float64
	// wins holds one flag per trial of the most recent Play (all chunks);
	// it is the only buffer whose size follows the play's batch size.
	wins []bool
	// Per-chunk accumulators and the decision lane for generic rules are
	// fixed-size: chunking bounds them at BatchSize.
	load0, load1 [BatchSize]float64
	dec          [BatchSize]Bin
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetBatchScratch fetches a scratch buffer from the shared pool.
func GetBatchScratch() *BatchScratch {
	return batchScratchPool.Get().(*BatchScratch)
}

// Release returns the scratch buffer to the pool. The caller must not use
// it afterwards.
func (sc *BatchScratch) Release() { batchScratchPool.Put(sc) }

// Wins exposes the per-trial win flags of the most recent Play batch;
// only the first b entries (the batch size passed to Play) are valid.
func (sc *BatchScratch) Wins() []bool { return sc.wins }

// ensure sizes the lane slab for cols columns and the win buffer for a
// b-trial play. Both grow monotonically: shrinking requests re-slice the
// existing capacity.
func (sc *BatchScratch) ensure(cols, b int) {
	if need := cols * BatchSize; cap(sc.lanes) < need {
		sc.lanes = make([]float64, need)
	} else {
		sc.lanes = sc.lanes[:need]
	}
	if cap(sc.wins) < b {
		sc.wins = make([]bool, b)
	} else {
		sc.wins = sc.wins[:b]
	}
}

// laneKind tags the fused decide+accumulate loop a player's column runs.
type laneKind uint8

const (
	// laneGeneric falls back to BatchRule.DecideBatch plus a separate
	// accumulation pass over the decision lane.
	laneGeneric laneKind = iota
	// laneThreshold : d = 1{x > a}.
	laneThreshold
	// laneCoin : d = 1{coin >= a} (strictly randomized oblivious).
	laneCoin
	// laneConst0 / laneConst1 : every trial goes to bin 0 / bin 1.
	laneConst0
	laneConst1
	// laneBand : d = 1 - 1{a <= x <= b} (single-interval union).
	laneBand
)

// laneOp is one player's classified rule: the lane kind plus up to two
// parameters (threshold, coin bias, or band endpoints), the player's coin
// column (-1 when coinless), and the rule itself for generic dispatch.
// Keeping the per-player state in one slice keeps kernel construction at
// a handful of allocations — it sits on the repeated-evaluation hot path.
type laneOp struct {
	kind laneKind
	coin int
	a, b float64
	rule BatchRule
}

// BatchKernel plays batches of Monte-Carlo trials for one system with no
// per-trial allocation and no per-player interface dispatch. It is
// immutable after construction and safe to share across workers (each
// worker brings its own randomness source and BatchScratch).
type BatchKernel struct {
	capacity float64
	ops      []laneOp
	// widths holds the per-player input ranges π_i, nil for the
	// homogeneous U[0, 1] game (mirroring System.widths).
	widths []float64
	// coinPlayers lists the coin-drawing players ascending; each op's
	// coin field maps the player to its coin column.
	coinPlayers []int
	// fused reports that every player's rule reduced to a coin-free
	// "bin 0 iff fusedLo[i] <= x <= fusedHi[i]" band, enabling the
	// register-resident trial loop that skips the lane slab entirely.
	// fusedTh additionally marks every band as lower-unbounded (pure
	// threshold systems), which halves the per-player compare work.
	fused            bool
	fusedTh          bool
	fusedLo, fusedHi []float64
}

// NewBatchKernel builds the batch kernel for the system, or reports
// ok=false when some player's rule does not implement BatchRule (or
// declares an unsupported coin arity) — those systems take the per-trial
// path.
func NewBatchKernel(sys *System) (*BatchKernel, bool) {
	if sys == nil {
		return nil, false
	}
	k := &BatchKernel{
		capacity: sys.capacity,
		ops:      make([]laneOp, len(sys.rules)),
		widths:   sys.widths,
	}
	for i, r := range sys.rules {
		br, ok := r.(BatchRule)
		if !ok {
			return nil, false
		}
		op := classify(br)
		op.rule = br
		switch br.CoinDraws() {
		case 0:
			op.coin = -1
		case 1:
			op.coin = len(k.coinPlayers)
			k.coinPlayers = append(k.coinPlayers, i)
		default:
			return nil, false
		}
		k.ops[i] = op
	}
	k.buildFused()
	return k, true
}

// buildFused lowers the op list to per-player bin-0 bands when every rule
// is deterministic and simple: bin 0 iff lo <= x <= hi. Threshold rules
// become (-Inf, th] (x > th is the exact complement for the finite inputs
// the game draws), bands keep their endpoints, constant rules get the
// full or the empty line. Anything with coins, generic dispatch, or a NaN
// parameter keeps the lane path.
func (k *BatchKernel) buildFused() {
	n := len(k.ops)
	buf := make([]float64, 2*n)
	lo, hi := buf[:n:n], buf[n:]
	for i, op := range k.ops {
		switch op.kind {
		case laneThreshold:
			if math.IsNaN(op.a) {
				return
			}
			lo[i], hi[i] = math.Inf(-1), op.a
		case laneBand:
			lo[i], hi[i] = op.a, op.b
		case laneConst0:
			lo[i], hi[i] = math.Inf(-1), math.Inf(1)
		case laneConst1:
			lo[i], hi[i] = math.Inf(1), math.Inf(-1)
		default:
			return
		}
	}
	k.fused, k.fusedLo, k.fusedHi = true, lo, hi
	k.fusedTh = true
	for _, l := range lo {
		if !math.IsInf(l, -1) {
			k.fusedTh = false
			break
		}
	}
}

// classify maps a rule to its fused lane op; unknown rule types keep the
// generic DecideBatch path. Each mapping mirrors the rule's DecideBatch
// semantics exactly (including NaN parameters, where the comparison in
// the fused loop and in DecideBatch is the same expression).
func classify(br BatchRule) laneOp {
	switch r := br.(type) {
	case ThresholdRule:
		return laneOp{kind: laneThreshold, a: r.Threshold}
	case ObliviousRule:
		switch {
		case r.P0 <= 0:
			return laneOp{kind: laneConst1}
		case r.P0 >= 1:
			return laneOp{kind: laneConst0}
		default:
			return laneOp{kind: laneCoin, a: r.P0}
		}
	case IntervalUnionRule:
		switch len(r.los) {
		case 0:
			return laneOp{kind: laneConst1}
		case 1:
			return laneOp{kind: laneBand, a: r.los[0], b: r.his[0]}
		}
	}
	return laneOp{kind: laneGeneric}
}

// N returns the number of players.
func (k *BatchKernel) N() int { return len(k.ops) }

// Play samples and plays b trials drawn from rng, using sc's buffers, and
// returns the number of wins. Per-trial win flags are left in
// sc.Wins()[:b]. The rng draw order is identical to b successive
// SampleInputs + Play rounds, so batched results are bit-identical to the
// per-trial path on a fixed stream.
func (k *BatchKernel) Play(sc *BatchScratch, rng *rand.Rand, b int) int {
	n, cc := len(k.ops), len(k.coinPlayers)
	sc.ensure(n+cc, b)
	wins := 0
	for off := 0; off < b; off += BatchSize {
		c := min(BatchSize, b-off)
		k.fillRand(sc, rng, c)
		wins += k.playChunk(sc, c, sc.wins[off:off+c])
	}
	return wins
}

// PlaySrc is Play drawing straight from a rand.Source: the same stream a
// rand.New(src) would consume, with the identical Float64 construction,
// so results are bit-identical to Play on the same source state. When src
// is a *rand.PCG (the simulator's worker source) the draws devirtualize
// into direct calls, which is the kernel's fastest pseudo-random path.
func (k *BatchKernel) PlaySrc(sc *BatchScratch, src rand.Source, b int) int {
	n, cc := len(k.ops), len(k.coinPlayers)
	pcg, _ := src.(*rand.PCG)
	if k.fused {
		// Coin-free simple systems skip the lane slab: draws, decisions
		// and load sums all stay in registers, one pass per trial.
		sc.ensure(0, b)
		if pcg != nil {
			if k.fusedTh {
				return k.playFusedThPCG(pcg, b, sc.wins)
			}
			return k.playFusedPCG(pcg, b, sc.wins)
		}
		return k.playFusedSrc(src, b, sc.wins)
	}
	sc.ensure(n+cc, b)
	wins := 0
	for off := 0; off < b; off += BatchSize {
		c := min(BatchSize, b-off)
		if pcg != nil {
			k.fillPCG(sc, pcg, c)
		} else {
			k.fillSrc(sc, src, c)
		}
		wins += k.playChunk(sc, c, sc.wins[off:off+c])
	}
	return wins
}

// playFusedPCG is the register-resident trial loop over the concrete PCG
// source: per player it draws, selects the bin by band membership, and
// accumulates both loads without touching the lane slab. The summation
// per trial runs in ascending player order adding exactly x or +0.0 per
// bin, so results stay bit-identical to the lane and per-trial paths.
func (k *BatchKernel) playFusedPCG(pcg *rand.PCG, b int, winbuf []bool) int {
	lo := k.fusedLo
	hi := k.fusedHi[:len(lo)]
	cap := k.capacity
	winbuf = winbuf[:b]
	wins := 0
	if k.widths == nil {
		for t := range winbuf {
			l0, l1 := 0.0, 0.0
			for i, liLo := range lo {
				x := srcFloat64(pcg.Uint64())
				m := math.Float64frombits(math.Float64bits(x) & -(b2u(x >= liLo) & b2u(x <= hi[i])))
				l0 += m
				l1 += x - m
			}
			u := b2u(l0 <= cap) & b2u(l1 <= cap)
			winbuf[t] = u != 0
			wins += int(u)
		}
		return wins
	}
	widths := k.widths[:len(lo)]
	for t := range winbuf {
		l0, l1 := 0.0, 0.0
		for i, liLo := range lo {
			x := srcFloat64(pcg.Uint64()) * widths[i]
			m := math.Float64frombits(math.Float64bits(x) & -(b2u(x >= liLo) & b2u(x <= hi[i])))
			l0 += m
			l1 += x - m
		}
		u := b2u(l0 <= cap) & b2u(l1 <= cap)
		winbuf[t] = u != 0
		wins += int(u)
	}
	return wins
}

// playFusedThPCG is playFusedPCG for pure threshold systems: every band
// is lower-unbounded, so membership is the single compare x <= hi[i].
func (k *BatchKernel) playFusedThPCG(pcg *rand.PCG, b int, winbuf []bool) int {
	hi := k.fusedHi
	cap := k.capacity
	winbuf = winbuf[:b]
	wins := 0
	if k.widths == nil {
		for t := range winbuf {
			l0, l1 := 0.0, 0.0
			for _, th := range hi {
				x := srcFloat64(pcg.Uint64())
				m := math.Float64frombits(math.Float64bits(x) & -b2u(x <= th))
				l0 += m
				l1 += x - m
			}
			u := b2u(l0 <= cap) & b2u(l1 <= cap)
			winbuf[t] = u != 0
			wins += int(u)
		}
		return wins
	}
	widths := k.widths[:len(hi)]
	for t := range winbuf {
		l0, l1 := 0.0, 0.0
		for i, th := range hi {
			x := srcFloat64(pcg.Uint64()) * widths[i]
			m := math.Float64frombits(math.Float64bits(x) & -b2u(x <= th))
			l0 += m
			l1 += x - m
		}
		u := b2u(l0 <= cap) & b2u(l1 <= cap)
		winbuf[t] = u != 0
		wins += int(u)
	}
	return wins
}

// playFusedSrc is playFusedPCG over an abstract Source (the observed-mode
// counting wrapper lands here); same arithmetic, interface draws.
func (k *BatchKernel) playFusedSrc(src rand.Source, b int, winbuf []bool) int {
	n := len(k.ops)
	lo, hi := k.fusedLo, k.fusedHi
	cap := k.capacity
	wins := 0
	for t := 0; t < b; t++ {
		l0, l1 := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := srcFloat64(src.Uint64())
			if k.widths != nil {
				x *= k.widths[i]
			}
			m := math.Float64frombits(math.Float64bits(x) & -(b2u(x >= lo[i]) & b2u(x <= hi[i])))
			l0 += m
			l1 += x - m
		}
		u := b2u(l0 <= cap) & b2u(l1 <= cap)
		winbuf[t] = u != 0
		wins += int(u)
	}
	return wins
}

// PlayQMC plays b trials whose coordinates are points start..start+b-1
// of a low-discrepancy sequence: dimension i < n is player i's input
// (scaled by π_i in the heterogeneous game), dimension n+c is coin
// column c. It returns the number of wins, with per-trial flags in
// sc.Wins()[:b]. Unlike the serial RNG paths, disjoint index ranges are
// independent, so shards may play them in any order.
func (k *BatchKernel) PlayQMC(sc *BatchScratch, seq LaneSampler, start uint64, b int) int {
	n, cc := len(k.ops), len(k.coinPlayers)
	sc.ensure(n+cc, b)
	wins := 0
	for off := 0; off < b; off += BatchSize {
		c := min(BatchSize, b-off)
		for i := 0; i < n+cc; i++ {
			seq.Fill(sc.lanes[i*BatchSize:i*BatchSize+c], i, start+uint64(off), c)
		}
		if k.widths != nil {
			for i, w := range k.widths {
				col := sc.lanes[i*BatchSize : i*BatchSize+c]
				for t := range col {
					col[t] *= w
				}
			}
		}
		wins += k.playChunk(sc, c, sc.wins[off:off+c])
	}
	return wins
}

// Dims reports the number of sample-space dimensions one trial consumes:
// n inputs plus one coin per strictly randomized player. A LaneSampler
// handed to PlayQMC must provide at least this many dimensions.
func (k *BatchKernel) Dims() int { return len(k.ops) + len(k.coinPlayers) }

// fillRand draws one chunk of c trials from rng into the lane slab,
// trial-major (the per-trial draw order: n inputs, then the coins in
// ascending player order), storing column-major. The homogeneous loop is
// kept separate so its stream of operations — and therefore its bits —
// matches the pre-heterogeneous kernel exactly.
func (k *BatchKernel) fillRand(sc *BatchScratch, rng *rand.Rand, c int) {
	n, cc := len(k.ops), len(k.coinPlayers)
	lanes := sc.lanes
	if k.widths == nil {
		for t := 0; t < c; t++ {
			for i := 0; i < n+cc; i++ {
				lanes[i*BatchSize+t] = rng.Float64()
			}
		}
		return
	}
	for t := 0; t < c; t++ {
		for i := 0; i < n; i++ {
			lanes[i*BatchSize+t] = rng.Float64() * k.widths[i]
		}
		for j := n; j < n+cc; j++ {
			lanes[j*BatchSize+t] = rng.Float64()
		}
	}
}

// srcFloat64 is the math/rand/v2 Float64 construction applied to a raw
// source draw. The multiply by 0x1p-53 is bit-identical to the stdlib's
// division by 2^53 — both are exact scalings of a 53-bit integer — but
// compiles to MULSD instead of the slower DIVSD.
func srcFloat64(u uint64) float64 { return float64(u<<11>>11) * 0x1p-53 }

// fillSrc is fillRand drawing from a raw Source (the observed-mode
// counting wrapper takes this path).
func (k *BatchKernel) fillSrc(sc *BatchScratch, src rand.Source, c int) {
	n, cc := len(k.ops), len(k.coinPlayers)
	lanes := sc.lanes
	if k.widths == nil {
		for t := 0; t < c; t++ {
			for i := 0; i < n+cc; i++ {
				lanes[i*BatchSize+t] = srcFloat64(src.Uint64())
			}
		}
		return
	}
	for t := 0; t < c; t++ {
		for i := 0; i < n; i++ {
			lanes[i*BatchSize+t] = srcFloat64(src.Uint64()) * k.widths[i]
		}
		for j := n; j < n+cc; j++ {
			lanes[j*BatchSize+t] = srcFloat64(src.Uint64())
		}
	}
}

// fillPCG is fillSrc specialized to the concrete *rand.PCG so the draw
// calls are direct rather than through the Source interface.
func (k *BatchKernel) fillPCG(sc *BatchScratch, pcg *rand.PCG, c int) {
	n, cc := len(k.ops), len(k.coinPlayers)
	lanes := sc.lanes
	if k.widths == nil {
		for t := 0; t < c; t++ {
			for i := 0; i < n+cc; i++ {
				lanes[i*BatchSize+t] = srcFloat64(pcg.Uint64())
			}
		}
		return
	}
	for t := 0; t < c; t++ {
		for i := 0; i < n; i++ {
			lanes[i*BatchSize+t] = srcFloat64(pcg.Uint64()) * k.widths[i]
		}
		for j := n; j < n+cc; j++ {
			lanes[j*BatchSize+t] = srcFloat64(pcg.Uint64())
		}
	}
}

// playChunk decides and scores one filled chunk of c trials, writing
// per-trial flags into winbuf[:c] and returning the win count.
//
// Loads accumulate player by player; per trial the additions run in
// ascending player order, matching the per-trial Play's summation order
// so the floating-point results agree bit-for-bit: with d ∈ {0, 1} the
// branch-free m = x·d select adds either exactly x or exactly +0.0 to a
// bin, and adding +0.0 to a non-negative load leaves its bits unchanged.
// The arithmetic select avoids a data-dependent branch that would
// mispredict on every other trial.
func (k *BatchKernel) playChunk(sc *BatchScratch, c int, winbuf []bool) int {
	n := len(k.ops)
	load0, load1 := sc.load0[:c], sc.load1[:c]
	for t := range load0 {
		load0[t], load1[t] = 0, 0
	}
	for i := range k.ops {
		col := sc.lanes[i*BatchSize : i*BatchSize+c]
		op := &k.ops[i]
		switch op.kind {
		case laneThreshold:
			fuseThreshold(col, load0, load1, op.a)
		case laneCoin:
			ci := op.coin
			coin := sc.lanes[(n+ci)*BatchSize : (n+ci)*BatchSize+c]
			fuseCoin(col, coin, load0, load1, op.a)
		case laneConst0:
			fuseConst(col, load0)
		case laneConst1:
			fuseConst(col, load1)
		case laneBand:
			fuseBand(col, load0, load1, op.a, op.b)
		default:
			var cs []float64
			if ci := op.coin; ci >= 0 {
				cs = sc.lanes[(n+ci)*BatchSize : (n+ci)*BatchSize+c]
			}
			dec := sc.dec[:c]
			op.rule.DecideBatch(col, cs, dec)
			fuseDecisions(col, dec, load0, load1)
		}
	}

	cap := k.capacity
	wins := 0
	for t := 0; t < c; t++ {
		// Branch-free win count: the data-dependent flag would mispredict
		// roughly every other trial as a conditional increment.
		u := b2u(load0[t] <= cap) & b2u(load1[t] <= cap)
		winbuf[t] = u != 0
		wins += int(u)
	}
	return wins
}

// b2u converts a comparison result to 0/1 branch-free (SETcc).
func b2u(c bool) uint64 {
	var u uint64
	if c {
		u = 1
	}
	return u
}

// sel0 returns x when c holds and +0.0 otherwise, without a branch or an
// int→float conversion: ANDing the payload bits with an all-ones/zero
// mask yields exactly x or +0.0, the two values the reference path's
// x·d select produces.
func sel0(x float64, c bool) float64 {
	return math.Float64frombits(math.Float64bits(x) & -b2u(c))
}

// fuseThreshold: d = 1{x > th}. m = sel0(x, d) is exactly x or +0.0, so
// load1 += m and load0 += x − m reproduce the ±0.0-exact per-trial sums.
func fuseThreshold(col, load0, load1 []float64, th float64) {
	load0 = load0[:len(col)]
	load1 = load1[:len(col)]
	for t, x := range col {
		m := sel0(x, x > th)
		load0[t] += x - m
		load1[t] += m
	}
}

// fuseCoin: d = 1{coin >= p0} (strictly randomized oblivious player).
func fuseCoin(col, coin, load0, load1 []float64, p0 float64) {
	load0 = load0[:len(col)]
	load1 = load1[:len(col)]
	coin = coin[:len(col)]
	for t, x := range col {
		m := sel0(x, coin[t] >= p0)
		load0[t] += x - m
		load1[t] += m
	}
}

// fuseConst adds the whole column to one bin (degenerate rules). The
// other bin receives exactly +0.0 per trial in the reference path, which
// never changes a non-negative load's bits, so skipping it is exact.
func fuseConst(col, load []float64) {
	load = load[:len(col)]
	for t, x := range col {
		load[t] += x
	}
}

// fuseBand: d = 1 − 1{lo <= x <= hi} (single-interval union rule). The
// two comparisons combine with & rather than && so no short-circuit
// branch is emitted.
func fuseBand(col, load0, load1 []float64, lo, hi float64) {
	load0 = load0[:len(col)]
	load1 = load1[:len(col)]
	for t, x := range col {
		m := math.Float64frombits(math.Float64bits(x) & -(b2u(x >= lo) & b2u(x <= hi)))
		load0[t] += m
		load1[t] += x - m
	}
}

// fuseDecisions accumulates a generic rule's decision lane.
func fuseDecisions(col []float64, dec []Bin, load0, load1 []float64) {
	load0 = load0[:len(col)]
	load1 = load1[:len(col)]
	dec = dec[:len(col)]
	for t, x := range col {
		m := sel0(x, dec[t] == Bin1)
		load0[t] += x - m
		load1[t] += m
	}
}
