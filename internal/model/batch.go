package model

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// This file is the zero-allocation batch layer of the model: BatchRule
// lets a rule decide many trials in one call (no per-player interface
// dispatch inside the Monte-Carlo hot loop), BatchScratch pools the
// per-worker buffers a batch needs, and BatchKernel samples and plays a
// whole batch of trials from those buffers.
//
// The load-bearing invariant is RNG draw order: for every trial the
// kernel draws the n inputs first and then one coin per strictly
// randomized player in ascending player order — exactly the sequence
// SampleInputs + Play consumes — so for a fixed stream the batched and
// per-trial paths produce bit-identical outcomes.

// BatchRule is implemented by rules that can decide a whole batch of
// trials in one call. The Monte-Carlo engine uses it to skip the
// per-player interface dispatch (and error plumbing) of Decide inside the
// hot loop; rules that do not implement it fall back to the per-trial
// path.
type BatchRule interface {
	LocalRule
	// CoinDraws reports how many rng.Float64 coin draws one Decide call
	// consumes: 0 for deterministic rules, 1 for strictly randomized
	// ones. The batch kernel pre-draws exactly this many coins per trial,
	// in the per-trial order, and passes them through DecideBatch's coins
	// argument — this is what keeps batched RNG streams bit-identical to
	// the per-trial path.
	CoinDraws() int
	// DecideBatch maps inputs[k] (and, when CoinDraws is 1, coins[k]) to
	// out[k] for every k. All slices have equal length; coins is nil when
	// CoinDraws is 0. Implementations must be equivalent to calling
	// Decide once per element with the matching coin as the rng draw.
	DecideBatch(inputs, coins []float64, out []Bin)
}

// CoinDraws implements BatchRule: a strictly randomized oblivious rule
// consumes one coin per decision, the degenerate 0/1 rules none (Decide
// returns before touching rng).
func (r ObliviousRule) CoinDraws() int {
	if r.P0 > 0 && r.P0 < 1 {
		return 1
	}
	return 0
}

// DecideBatch implements BatchRule.
func (r ObliviousRule) DecideBatch(_, coins []float64, out []Bin) {
	switch {
	case r.P0 <= 0:
		for k := range out {
			out[k] = Bin1
		}
	case r.P0 >= 1:
		for k := range out {
			out[k] = Bin0
		}
	default:
		p0 := r.P0
		for k, c := range coins {
			v := Bin0
			if c >= p0 {
				v = Bin1
			}
			out[k] = v
		}
	}
}

// CoinDraws implements BatchRule: threshold rules are deterministic.
func (r ThresholdRule) CoinDraws() int { return 0 }

// DecideBatch implements BatchRule. The conditional assigns a constant,
// which compiles to a branch-free conditional move — the comparison
// outcome is data-dependent and would otherwise mispredict constantly.
func (r ThresholdRule) DecideBatch(inputs, _ []float64, out []Bin) {
	th := r.Threshold
	for k, x := range inputs {
		v := Bin0
		if x > th {
			v = Bin1
		}
		out[k] = v
	}
}

// IntervalUnionRule is the deterministic rule whose bin-0 region is a
// finite union of disjoint closed intervals, stored flattened for a
// cache-friendly scan. It is the batched counterpart of wrapping an
// interval set in a FuncRule, and the rule type response.IntervalSet
// lowers to.
type IntervalUnionRule struct {
	name string
	los  []float64
	his  []float64
}

// NewIntervalUnionRule builds the rule from interval endpoints
// (los[j], his[j] bound the j-th interval). Intervals must satisfy
// 0 ≤ lo ≤ hi ≤ 1 and be sorted and disjoint. An empty union is valid
// (the rule always chooses bin 1).
func NewIntervalUnionRule(name string, los, his []float64) (IntervalUnionRule, error) {
	if len(los) != len(his) {
		return IntervalUnionRule{}, fmt.Errorf("model: %d interval starts for %d ends", len(los), len(his))
	}
	cl := append([]float64(nil), los...)
	ch := append([]float64(nil), his...)
	for j := range cl {
		if math.IsNaN(cl[j]) || math.IsNaN(ch[j]) || cl[j] < 0 || ch[j] > 1 || cl[j] > ch[j] {
			return IntervalUnionRule{}, fmt.Errorf("model: invalid interval [%v, %v]", cl[j], ch[j])
		}
		if j > 0 && cl[j] <= ch[j-1] {
			return IntervalUnionRule{}, fmt.Errorf("model: intervals [%v, %v] and [%v, %v] out of order or overlapping",
				cl[j-1], ch[j-1], cl[j], ch[j])
		}
	}
	if !sort.Float64sAreSorted(cl) {
		return IntervalUnionRule{}, fmt.Errorf("model: interval starts not sorted")
	}
	return IntervalUnionRule{name: name, los: cl, his: ch}, nil
}

// Name returns the rule's label.
func (r IntervalUnionRule) Name() string { return r.name }

// Contains reports whether x lies in the bin-0 region.
func (r IntervalUnionRule) Contains(x float64) bool {
	for j, lo := range r.los {
		if x < lo {
			return false
		}
		if x <= r.his[j] {
			return true
		}
	}
	return false
}

// Decide implements LocalRule.
func (r IntervalUnionRule) Decide(input float64, _ *rand.Rand) (Bin, error) {
	if r.Contains(input) {
		return Bin0, nil
	}
	return Bin1, nil
}

// CoinDraws implements BatchRule: interval rules are deterministic.
func (r IntervalUnionRule) CoinDraws() int { return 0 }

// DecideBatch implements BatchRule.
func (r IntervalUnionRule) DecideBatch(inputs, _ []float64, out []Bin) {
	if len(r.los) == 1 {
		// Single interval (bands, thresholds): branch-light fast path.
		lo, hi := r.los[0], r.his[0]
		for k, x := range inputs {
			if x >= lo && x <= hi {
				out[k] = Bin0
			} else {
				out[k] = Bin1
			}
		}
		return
	}
	for k, x := range inputs {
		if r.Contains(x) {
			out[k] = Bin0
		} else {
			out[k] = Bin1
		}
	}
}

// Compile-time interface compliance checks for the batch layer.
var (
	_ BatchRule = ObliviousRule{}
	_ BatchRule = ThresholdRule{}
	_ BatchRule = IntervalUnionRule{}
	_ LocalRule = IntervalUnionRule{}
)

// BatchScratch holds the reusable buffers one worker needs to sample and
// play batches of trials. Buffers grow on demand and are recycled through
// a shared pool: a steady-state worker loop performs zero allocations per
// trial.
type BatchScratch struct {
	// inputs and coins are column-major: player i's (or coin column c's)
	// values for a b-trial batch occupy [i*b : (i+1)*b].
	inputs, coins []float64
	decisions     []Bin
	load0, load1  []float64
	wins          []bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetBatchScratch fetches a scratch buffer from the shared pool.
func GetBatchScratch() *BatchScratch {
	return batchScratchPool.Get().(*BatchScratch)
}

// Release returns the scratch buffer to the pool. The caller must not use
// it afterwards.
func (sc *BatchScratch) Release() { batchScratchPool.Put(sc) }

// Wins exposes the per-trial win flags of the most recent Play batch;
// only the first b entries (the batch size passed to Play) are valid.
func (sc *BatchScratch) Wins() []bool { return sc.wins }

// ensure grows the buffers to hold a b-trial batch for n players and
// coinCols coin columns.
func (sc *BatchScratch) ensure(n, coinCols, b int) {
	if need := n * b; cap(sc.inputs) < need {
		sc.inputs = make([]float64, need)
		sc.decisions = make([]Bin, need)
	} else {
		sc.inputs = sc.inputs[:need]
		sc.decisions = sc.decisions[:need]
	}
	if need := coinCols * b; cap(sc.coins) < need {
		sc.coins = make([]float64, need)
	} else {
		sc.coins = sc.coins[:need]
	}
	if cap(sc.load0) < b {
		sc.load0 = make([]float64, b)
		sc.load1 = make([]float64, b)
		sc.wins = make([]bool, b)
	} else {
		sc.load0 = sc.load0[:b]
		sc.load1 = sc.load1[:b]
		sc.wins = sc.wins[:b]
	}
}

// BatchKernel plays batches of Monte-Carlo trials for one system with no
// per-trial allocation and no per-player interface dispatch. It is
// immutable after construction and safe to share across workers (each
// worker brings its own rng and BatchScratch).
type BatchKernel struct {
	capacity float64
	rules    []BatchRule
	// widths holds the per-player input ranges π_i, nil for the
	// homogeneous U[0, 1] game (mirroring System.widths).
	widths []float64
	// coinIx maps player index to its coin column, -1 for coinless
	// players; coinPlayers lists the coin-drawing players ascending.
	coinIx      []int
	coinPlayers []int
}

// NewBatchKernel builds the batch kernel for the system, or reports
// ok=false when some player's rule does not implement BatchRule (or
// declares an unsupported coin arity) — those systems take the per-trial
// path.
func NewBatchKernel(sys *System) (*BatchKernel, bool) {
	if sys == nil {
		return nil, false
	}
	k := &BatchKernel{
		capacity: sys.capacity,
		rules:    make([]BatchRule, len(sys.rules)),
		widths:   sys.widths,
		coinIx:   make([]int, len(sys.rules)),
	}
	for i, r := range sys.rules {
		br, ok := r.(BatchRule)
		if !ok {
			return nil, false
		}
		k.rules[i] = br
		switch br.CoinDraws() {
		case 0:
			k.coinIx[i] = -1
		case 1:
			k.coinIx[i] = len(k.coinPlayers)
			k.coinPlayers = append(k.coinPlayers, i)
		default:
			return nil, false
		}
	}
	return k, true
}

// N returns the number of players.
func (k *BatchKernel) N() int { return len(k.rules) }

// Play samples and plays b trials drawn from rng, using sc's buffers, and
// returns the number of wins. Per-trial win flags are left in
// sc.Wins()[:b]. The rng draw order is identical to b successive
// SampleInputs + Play rounds, so batched results are bit-identical to the
// per-trial path on a fixed stream.
func (k *BatchKernel) Play(sc *BatchScratch, rng *rand.Rand, b int) int {
	n := len(k.rules)
	sc.ensure(n, len(k.coinPlayers), b)
	inputs, coins := sc.inputs, sc.coins

	// Draw trial-major (the per-trial order), store column-major. The
	// homogeneous branch is the exact pre-heterogeneous loop, so its
	// results stay bit-identical; the heterogeneous branch scales each
	// draw by the player's range, matching SampleInputsInto.
	if k.widths == nil {
		for t := 0; t < b; t++ {
			for i := 0; i < n; i++ {
				inputs[i*b+t] = rng.Float64()
			}
			for c := range k.coinPlayers {
				coins[c*b+t] = rng.Float64()
			}
		}
	} else {
		for t := 0; t < b; t++ {
			for i := 0; i < n; i++ {
				inputs[i*b+t] = rng.Float64() * k.widths[i]
			}
			for c := range k.coinPlayers {
				coins[c*b+t] = rng.Float64()
			}
		}
	}

	// One DecideBatch call per player, on its contiguous column.
	for i := 0; i < n; i++ {
		var cs []float64
		if ci := k.coinIx[i]; ci >= 0 {
			cs = coins[ci*b : (ci+1)*b]
		}
		k.rules[i].DecideBatch(inputs[i*b:(i+1)*b], cs, sc.decisions[i*b:(i+1)*b])
	}

	// Accumulate bin loads player by player. Per trial the additions run
	// in ascending player order, matching Play's summation order so the
	// floating-point results agree bit-for-bit: with d ∈ {0, 1}, the
	// branch-free x·d / x·(1−d) terms add either exactly x or exactly
	// +0.0, and adding +0.0 to a non-negative load leaves its bits
	// unchanged. The multiply form avoids a data-dependent branch that
	// would mispredict on every other trial.
	load0, load1 := sc.load0[:b], sc.load1[:b]
	for t := range load0 {
		load0[t], load1[t] = 0, 0
	}
	for i := 0; i < n; i++ {
		col := inputs[i*b : (i+1)*b]
		dec := sc.decisions[i*b : (i+1)*b]
		for t, x := range col {
			d := float64(dec[t])
			load0[t] += x * (1 - d)
			load1[t] += x * d
		}
	}

	wins := 0
	winbuf := sc.wins[:b]
	for t := 0; t < b; t++ {
		w := load0[t] <= k.capacity && load1[t] <= k.capacity
		winbuf[t] = w
		if w {
			wins++
		}
	}
	return wins
}
