package comm

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/nonoblivious"
	"repro/internal/stats"
)

func TestValidate(t *testing.T) {
	good := OneBitBroadcast{N: 3, Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.5, BetaHigh: 0.7}
	if err := good.Validate(); err != nil {
		t.Errorf("valid protocol rejected: %v", err)
	}
	cases := []OneBitBroadcast{
		{N: 1, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5},
		{N: 11, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5},
		{N: 3, Cut: -0.1, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5},
		{N: 3, Cut: 0.5, SenderTheta: 1.5, BetaLow: 0.5, BetaHigh: 0.5},
		{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: math.NaN(), BetaHigh: 0.5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDegenerateCutMatchesNoCommunication(t *testing.T) {
	// Cut = 0: the bit is always 1, so the protocol is the symmetric
	// threshold algorithm at BetaHigh (with the sender at SenderTheta).
	beta := 0.622
	p := OneBitBroadcast{N: 3, Cut: 0, SenderTheta: beta, BetaLow: 0.1, BetaHigh: beta}
	got, err := p.WinProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nonoblivious.SymmetricWinningProbability(3, 1, beta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("cut=0 protocol %v vs no-communication %v", got, want)
	}
	// Cut = 1 symmetrically uses BetaLow.
	p = OneBitBroadcast{N: 3, Cut: 1, SenderTheta: beta, BetaLow: beta, BetaHigh: 0.9}
	got, err = p.WinProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("cut=1 protocol %v vs no-communication %v", got, want)
	}
}

func TestWinProbabilityMatchesSimulation(t *testing.T) {
	p := OneBitBroadcast{N: 4, Cut: 0.45, SenderTheta: 0.62, BetaLow: 0.5, BetaHigh: 0.75}
	capacity := 4.0 / 3
	analytic, err := p.WinProbability(capacity)
	if err != nil {
		t.Fatal(err)
	}
	// Manual simulation threading the broadcast bit.
	rng := rand.New(rand.NewPCG(77, 88))
	var prop stats.Proportion
	const trials = 400000
	for i := 0; i < trials; i++ {
		x0 := rng.Float64()
		bit := 0
		if x0 > p.Cut {
			bit = 1
		}
		rules, err := p.Rules(bit)
		if err != nil {
			t.Fatal(err)
		}
		var load0, load1 float64
		// Sender.
		b, err := rules[0].Decide(x0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if b == 0 {
			load0 += x0
		} else {
			load1 += x0
		}
		for j := 1; j < p.N; j++ {
			x := rng.Float64()
			b, err := rules[j].Decide(x, rng)
			if err != nil {
				t.Fatal(err)
			}
			if b == 0 {
				load0 += x
			} else {
				load1 += x
			}
		}
		prop.Add(load0 <= capacity && load1 <= capacity)
	}
	if math.Abs(prop.Estimate()-analytic) > 4*prop.StdErr() {
		t.Errorf("analytic %v vs simulated %v ± %v", analytic, prop.Estimate(), prop.StdErr())
	}
}

func TestWinProbabilityValidation(t *testing.T) {
	p := OneBitBroadcast{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5}
	if _, err := p.WinProbability(0); err == nil {
		t.Error("zero capacity: expected error")
	}
	bad := OneBitBroadcast{N: 1}
	if _, err := bad.WinProbability(1); err == nil {
		t.Error("invalid protocol: expected error")
	}
}

func TestRulesValidation(t *testing.T) {
	p := OneBitBroadcast{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.4, BetaHigh: 0.7}
	if _, err := p.Rules(2); err == nil {
		t.Error("bit=2: expected error")
	}
	rules, err := p.Rules(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	// Listener with bit=1 uses BetaHigh.
	b, err := rules[1].Decide(0.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 { // 0.6 ≤ 0.7 → bin 0
		t.Error("listener should use BetaHigh = 0.7 when bit = 1")
	}
}

func TestOneBitBeatsNoCommunication(t *testing.T) {
	// The paper's value-of-information thesis at general n, exactly: one
	// broadcast bit strictly improves the optimal winning probability.
	cases := []struct {
		n        int
		capacity float64
		betaStar float64
		noComm   float64
	}{
		{3, 1, 0.622036, 0.544631},
		{4, 4.0 / 3, 0.677998, 0.428539},
	}
	for _, c := range cases {
		res, err := Optimize(c.n, c.capacity, c.betaStar)
		if err != nil {
			t.Fatal(err)
		}
		if res.WinProbability < c.noComm-1e-9 {
			t.Errorf("n=%d: one-bit optimum %v fell below no-communication %v",
				c.n, res.WinProbability, c.noComm)
		}
		if res.WinProbability < c.noComm+0.005 {
			t.Errorf("n=%d: one bit should strictly help (got %v vs %v)",
				c.n, res.WinProbability, c.noComm)
		}
		t.Logf("n=%d δ=%.3f: one-bit broadcast %.6f vs no-comm %.6f (cut %.3f, θ %.3f, β %.3f/%.3f)",
			c.n, c.capacity, res.WinProbability, c.noComm,
			res.Protocol.Cut, res.Protocol.SenderTheta, res.Protocol.BetaLow, res.Protocol.BetaHigh)
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(1, 1, 0.5); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := Optimize(3, 0, 0.5); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := Optimize(3, 1, 1.5); err == nil {
		t.Error("betaStar > 1: expected error")
	}
}
