package comm

import (
	"math"
	"testing"
)

func TestOneBitToOneValidate(t *testing.T) {
	good := OneBitToOne{N: 3, Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.5, BetaHigh: 0.7, Beta: 0.62}
	if err := good.Validate(); err != nil {
		t.Errorf("valid protocol rejected: %v", err)
	}
	bad := []OneBitToOne{
		{N: 2, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5, Beta: 0.5},
		{N: 11, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5, Beta: 0.5},
		{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5, Beta: -0.1},
		{N: 3, Cut: math.NaN(), SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5, Beta: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestOneBitToOneDegenerateMatchesNoCommunication(t *testing.T) {
	// Equal conditional thresholds erase the communication.
	beta := 0.622
	p := OneBitToOne{N: 3, Cut: 0.5, SenderTheta: beta, BetaLow: beta, BetaHigh: beta, Beta: beta}
	got, err := p.WinProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.544631) > 1e-5 {
		t.Errorf("degenerate one-way %v, want ≈ 0.544631", got)
	}
}

func TestOneBitToOneBetweenNoneAndBroadcast(t *testing.T) {
	// The information ladder within the one-bit world: telling one
	// listener is worth less than telling all of them, but more than
	// telling nobody.
	noComm := 0.544631
	oneWayProto, oneWay, err := OptimizeOneWay(3, 1, 0.622036)
	if err != nil {
		t.Fatal(err)
	}
	broadcast, err := Optimize(3, 1, 0.622036)
	if err != nil {
		t.Fatal(err)
	}
	if oneWay < noComm-1e-9 {
		t.Errorf("one-way optimum %v below no-communication %v", oneWay, noComm)
	}
	if oneWay < noComm+0.005 {
		t.Errorf("one bit to one listener should strictly help: %v vs %v", oneWay, noComm)
	}
	// Both one-bit families are bounded by full information (3/4). Note
	// the tuned ONE-WAY family can exceed the tuned broadcast family:
	// the broadcast parameterization forces symmetric listeners while the
	// one-way one frees the third player, so neither family contains the
	// other — each value is a lower bound for its pattern's optimum.
	if oneWay > 0.75+1e-6 {
		t.Errorf("one-way %v cannot beat full information 3/4", oneWay)
	}
	if broadcast.WinProbability > 0.75+1e-6 {
		t.Errorf("broadcast %v cannot beat full information 3/4", broadcast.WinProbability)
	}
	t.Logf("n=3 δ=1: none %.6f, one-way bit %.6f, sym-broadcast bit %.6f (one-way protocol %+v)",
		noComm, oneWay, broadcast.WinProbability, oneWayProto)
}

func TestOneWayMirrorProtocolIsExactlyFiveEighths(t *testing.T) {
	// The tuned optimum has a closed form: the sender thresholds at 1/2
	// and announces its side; player 1 MIRRORS the bit (joins bin 0
	// exactly when the sender went to bin 1); player 2 always joins
	// bin 0. By direct integration P = 3/8 + 1/4 = 5/8:
	//   bit=0: win ⇔ x₀ + x₂ ≤ 1 with x₀ ≤ 1/2 → ∫₀^½ (1-x) dx = 3/8,
	//   bit=1: win ⇔ x₁ + x₂ ≤ 1, freely      → 1/2 · 1/2     = 1/4.
	p := OneBitToOne{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0, BetaHigh: 1, Beta: 1}
	got, err := p.WinProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.625) > 1e-12 {
		t.Errorf("mirror protocol P = %.15f, want exactly 5/8", got)
	}
}

func TestOneBitToOneValidation(t *testing.T) {
	p := OneBitToOne{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0.5, BetaHigh: 0.5, Beta: 0.5}
	if _, err := p.WinProbability(0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := (OneBitToOne{N: 2}).WinProbability(1); err == nil {
		t.Error("invalid protocol: expected error")
	}
	if _, _, err := OptimizeOneWay(2, 1, 0.5); err == nil {
		t.Error("n=2: expected error")
	}
	if _, _, err := OptimizeOneWay(3, 0, 0.5); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, _, err := OptimizeOneWay(3, 1, 2); err == nil {
		t.Error("betaStar > 1: expected error")
	}
}
