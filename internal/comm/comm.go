// Package comm realizes the paper's Section 6 program — "general
// communication patterns ... can all be treated in our combinatorial
// framework" — for the simplest non-trivial pattern at general n: a
// single broadcast bit.
//
// Player 0 announces one bit, whether its input exceeds a cut point c.
// Conditioned on the bit, every input region in play is still a finite
// union of intervals — the sender's input is uniform on [0,c] or [c,1],
// and each listener applies a bit-dependent threshold — so the
// no-communication machinery of package response evaluates the protocol
// EXACTLY: the winning probability is the sum over the two bit values of
// unconditional pair-region probabilities (response.WinProbabilityVectorPairs).
//
// The package also tunes the protocol's four parameters numerically,
// quantifying how much one bit of communication is worth on top of the
// paper's no-communication optimum.
package comm

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/response"
)

// OneBitBroadcast is the protocol: player 0 broadcasts bit = 1{x₀ > Cut};
// player 0 itself enters bin 0 when x₀ ≤ SenderTheta; listener i ≥ 1
// enters bin 0 when x_i ≤ BetaLow (bit = 0) or x_i ≤ BetaHigh (bit = 1).
type OneBitBroadcast struct {
	// N is the number of players (≥ 2; player 0 is the sender).
	N int
	// Cut is the broadcast cut point in [0, 1].
	Cut float64
	// SenderTheta is the sender's own bin-0 threshold.
	SenderTheta float64
	// BetaLow and BetaHigh are the listeners' bit-conditional thresholds.
	BetaLow, BetaHigh float64
}

// Validate checks all parameters.
func (p OneBitBroadcast) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("comm: need at least 2 players, got %d", p.N)
	}
	if p.N > 10 {
		return fmt.Errorf("comm: exact evaluation limited to 10 players, got %d", p.N)
	}
	for name, v := range map[string]float64{
		"cut": p.Cut, "senderTheta": p.SenderTheta, "betaLow": p.BetaLow, "betaHigh": p.BetaHigh,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("comm: %s = %v outside [0, 1]", name, v)
		}
	}
	return nil
}

// WinProbability evaluates the protocol exactly (up to float64 rounding in
// the Lemma 2.4 kernels): the two bit values partition the probability
// space, and each conditional world is a vector of interval-pair regions.
func (p OneBitBroadcast) WinProbability(capacity float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("comm: capacity %v must be strictly positive and finite", capacity)
	}
	senderSet, err := response.Threshold(p.SenderTheta)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, world := range []struct {
		lo, hi float64 // sender's input range in this world
		beta   float64 // listeners' threshold in this world
	}{
		{0, p.Cut, p.BetaLow},
		{p.Cut, 1, p.BetaHigh},
	} {
		if world.lo >= world.hi {
			continue // empty world (cut at 0 or 1)
		}
		bin0 := make([]response.IntervalSet, p.N)
		bin1 := make([]response.IntervalSet, p.N)
		s0, err := senderSet.Intersect(world.lo, world.hi)
		if err != nil {
			return 0, err
		}
		s1, err := senderSet.Complement().Intersect(world.lo, world.hi)
		if err != nil {
			return 0, err
		}
		bin0[0], bin1[0] = s0, s1
		lset, err := response.Threshold(world.beta)
		if err != nil {
			return 0, err
		}
		for i := 1; i < p.N; i++ {
			bin0[i] = lset
			bin1[i] = lset.Complement()
		}
		v, err := response.WinProbabilityVectorPairs(bin0, bin1, capacity)
		if err != nil {
			return 0, err
		}
		total += v
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// Rules materializes the protocol for the Monte-Carlo simulator: because
// model.LocalRule sees only the player's own input, the bit is threaded by
// constructing one rule set per possible bit value; the caller (or
// Simulate below) selects the set matching the sampled x₀.
func (p OneBitBroadcast) Rules(bit int) ([]model.LocalRule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if bit != 0 && bit != 1 {
		return nil, fmt.Errorf("comm: bit %d must be 0 or 1", bit)
	}
	beta := p.BetaLow
	if bit == 1 {
		beta = p.BetaHigh
	}
	rules := make([]model.LocalRule, p.N)
	sender, err := model.NewThresholdRule(p.SenderTheta)
	if err != nil {
		return nil, err
	}
	rules[0] = sender
	listener, err := model.NewThresholdRule(beta)
	if err != nil {
		return nil, err
	}
	for i := 1; i < p.N; i++ {
		rules[i] = listener
	}
	return rules, nil
}

// OneBitToOne is the one-way variant: the bit 1{x₀ > Cut} is seen ONLY by
// player 1; players 2..n-1 use the unconditional threshold Beta.
type OneBitToOne struct {
	// N is the number of players (≥ 3 so that some player is excluded
	// from the communication).
	N int
	// Cut is the sender's announcement cut point.
	Cut float64
	// SenderTheta is the sender's own bin-0 threshold.
	SenderTheta float64
	// BetaLow and BetaHigh are player 1's bit-conditional thresholds.
	BetaLow, BetaHigh float64
	// Beta is the unconditional threshold of the remaining players.
	Beta float64
}

// Validate checks all parameters.
func (p OneBitToOne) Validate() error {
	if p.N < 3 {
		return fmt.Errorf("comm: one-way protocol needs at least 3 players, got %d", p.N)
	}
	if p.N > 10 {
		return fmt.Errorf("comm: exact evaluation limited to 10 players, got %d", p.N)
	}
	for name, v := range map[string]float64{
		"cut": p.Cut, "senderTheta": p.SenderTheta,
		"betaLow": p.BetaLow, "betaHigh": p.BetaHigh, "beta": p.Beta,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("comm: %s = %v outside [0, 1]", name, v)
		}
	}
	return nil
}

// WinProbability evaluates the one-way protocol exactly by conditioning on
// the bit, exactly as OneBitBroadcast does.
func (p OneBitToOne) WinProbability(capacity float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("comm: capacity %v must be strictly positive and finite", capacity)
	}
	senderSet, err := response.Threshold(p.SenderTheta)
	if err != nil {
		return 0, err
	}
	othersSet, err := response.Threshold(p.Beta)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, world := range []struct {
		lo, hi float64
		beta   float64 // player 1's threshold in this world
	}{
		{0, p.Cut, p.BetaLow},
		{p.Cut, 1, p.BetaHigh},
	} {
		if world.lo >= world.hi {
			continue
		}
		bin0 := make([]response.IntervalSet, p.N)
		bin1 := make([]response.IntervalSet, p.N)
		s0, err := senderSet.Intersect(world.lo, world.hi)
		if err != nil {
			return 0, err
		}
		s1, err := senderSet.Complement().Intersect(world.lo, world.hi)
		if err != nil {
			return 0, err
		}
		bin0[0], bin1[0] = s0, s1
		listener, err := response.Threshold(world.beta)
		if err != nil {
			return 0, err
		}
		bin0[1], bin1[1] = listener, listener.Complement()
		for i := 2; i < p.N; i++ {
			bin0[i] = othersSet
			bin1[i] = othersSet.Complement()
		}
		v, err := response.WinProbabilityVectorPairs(bin0, bin1, capacity)
		if err != nil {
			return 0, err
		}
		total += v
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// OptimizeOneWay tunes the five OneBitToOne parameters by Nelder-Mead,
// seeded from the no-communication optimum.
func OptimizeOneWay(n int, capacity, betaStar float64) (OneBitToOne, float64, error) {
	if n < 3 || n > 10 {
		return OneBitToOne{}, 0, fmt.Errorf("comm: n = %d outside [3, 10]", n)
	}
	if !(capacity > 0) {
		return OneBitToOne{}, 0, fmt.Errorf("comm: capacity %v must be strictly positive", capacity)
	}
	if math.IsNaN(betaStar) || betaStar < 0 || betaStar > 1 {
		return OneBitToOne{}, 0, fmt.Errorf("comm: betaStar %v outside [0, 1]", betaStar)
	}
	obj := func(v []float64) float64 {
		p := OneBitToOne{
			N:           n,
			Cut:         clamp01(v[0]),
			SenderTheta: clamp01(v[1]),
			BetaLow:     clamp01(v[2]),
			BetaHigh:    clamp01(v[3]),
			Beta:        clamp01(v[4]),
		}
		val, err := p.WinProbability(capacity)
		if err != nil {
			return math.Inf(-1)
		}
		return val
	}
	lo := []float64{0, 0, 0, 0, 0}
	hi := []float64{1, 1, 1, 1, 1}
	starts := [][]float64{
		{0, betaStar, betaStar, betaStar, betaStar}, // degenerate: no communication
		{0.5, betaStar, betaStar * 0.8, math.Min(1, betaStar*1.2), betaStar},
	}
	bestVal := math.Inf(-1)
	var best OneBitToOne
	for _, start := range starts {
		res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.12, 3000, 1e-10)
		if err != nil {
			return OneBitToOne{}, 0, err
		}
		if res.Value > bestVal {
			bestVal = res.Value
			best = OneBitToOne{
				N:           n,
				Cut:         clamp01(res.X[0]),
				SenderTheta: clamp01(res.X[1]),
				BetaLow:     clamp01(res.X[2]),
				BetaHigh:    clamp01(res.X[3]),
				Beta:        clamp01(res.X[4]),
			}
		}
	}
	return best, bestVal, nil
}

// OptimizeResult is the tuned protocol and its winning probability.
type OptimizeResult struct {
	Protocol       OneBitBroadcast
	WinProbability float64
}

// Optimize tunes (Cut, SenderTheta, BetaLow, BetaHigh) by Nelder-Mead over
// the exact evaluator, seeded from the no-communication optimum (betaStar)
// and from a median-cut heuristic. The result can only improve on the
// no-communication optimum, which appears as the degenerate Cut = 0 with
// BetaHigh = SenderTheta = betaStar.
func Optimize(n int, capacity, betaStar float64) (OptimizeResult, error) {
	if n < 2 || n > 10 {
		return OptimizeResult{}, fmt.Errorf("comm: n = %d outside [2, 10]", n)
	}
	if !(capacity > 0) {
		return OptimizeResult{}, fmt.Errorf("comm: capacity %v must be strictly positive", capacity)
	}
	if math.IsNaN(betaStar) || betaStar < 0 || betaStar > 1 {
		return OptimizeResult{}, fmt.Errorf("comm: betaStar %v outside [0, 1]", betaStar)
	}
	obj := func(v []float64) float64 {
		p := OneBitBroadcast{
			N:           n,
			Cut:         clamp01(v[0]),
			SenderTheta: clamp01(v[1]),
			BetaLow:     clamp01(v[2]),
			BetaHigh:    clamp01(v[3]),
		}
		val, err := p.WinProbability(capacity)
		if err != nil {
			return math.Inf(-1)
		}
		return val
	}
	lo := []float64{0, 0, 0, 0}
	hi := []float64{1, 1, 1, 1}
	starts := [][]float64{
		{0.0, betaStar, betaStar, betaStar}, // degenerate: no communication
		{0.5, betaStar, betaStar * 0.8, math.Min(1, betaStar*1.2)},
		{betaStar, betaStar, 0.4, 0.8},
	}
	best := OptimizeResult{WinProbability: math.Inf(-1)}
	for _, start := range starts {
		res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.12, 3000, 1e-10)
		if err != nil {
			return OptimizeResult{}, err
		}
		if res.Value > best.WinProbability {
			best = OptimizeResult{
				Protocol: OneBitBroadcast{
					N:           n,
					Cut:         clamp01(res.X[0]),
					SenderTheta: clamp01(res.X[1]),
					BetaLow:     clamp01(res.X[2]),
					BetaHigh:    clamp01(res.X[3]),
				},
				WinProbability: res.Value,
			}
		}
	}
	return best, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
