package poly

import (
	"fmt"
	"math/big"
	"strings"
)

// Piecewise is a function defined by exact rational polynomials on
// consecutive intervals: piece i applies on [Breaks[i], Breaks[i+1]].
// This mirrors the case analysis of Section 5.2 of the paper, where the
// winning probability of a symmetric single-threshold algorithm is a
// different polynomial in the common threshold β on each interval between
// the inclusion-exclusion guard breakpoints.
type Piecewise struct {
	breaks []*big.Rat
	pieces []RatPoly
}

// NewPiecewise builds a piecewise polynomial from n+1 strictly increasing
// breakpoints and n pieces. Inputs are deep-copied.
func NewPiecewise(breaks []*big.Rat, pieces []RatPoly) (*Piecewise, error) {
	if len(breaks) != len(pieces)+1 {
		return nil, fmt.Errorf("poly: %d breakpoints need %d pieces, got %d",
			len(breaks), len(breaks)-1, len(pieces))
	}
	if len(pieces) == 0 {
		return nil, fmt.Errorf("poly: piecewise function needs at least one piece")
	}
	bs := make([]*big.Rat, len(breaks))
	for i, b := range breaks {
		if b == nil {
			return nil, fmt.Errorf("poly: nil breakpoint at index %d", i)
		}
		bs[i] = new(big.Rat).Set(b)
		if i > 0 && bs[i-1].Cmp(bs[i]) >= 0 {
			return nil, fmt.Errorf("poly: breakpoints must be strictly increasing (%v >= %v)",
				bs[i-1], bs[i])
		}
	}
	ps := make([]RatPoly, len(pieces))
	copy(ps, pieces) // RatPoly is immutable; shallow copy is safe
	return &Piecewise{breaks: bs, pieces: ps}, nil
}

// NumPieces returns the number of polynomial pieces.
func (pw *Piecewise) NumPieces() int { return len(pw.pieces) }

// Domain returns copies of the overall domain endpoints.
func (pw *Piecewise) Domain() (lo, hi *big.Rat) {
	return new(big.Rat).Set(pw.breaks[0]), new(big.Rat).Set(pw.breaks[len(pw.breaks)-1])
}

// Breakpoints returns a copy of the breakpoint slice.
func (pw *Piecewise) Breakpoints() []*big.Rat {
	out := make([]*big.Rat, len(pw.breaks))
	for i, b := range pw.breaks {
		out[i] = new(big.Rat).Set(b)
	}
	return out
}

// Piece returns the i-th polynomial piece and its interval.
func (pw *Piecewise) Piece(i int) (RatPoly, Interval, error) {
	if i < 0 || i >= len(pw.pieces) {
		return RatPoly{}, Interval{}, fmt.Errorf("poly: piece index %d out of range [0, %d)", i, len(pw.pieces))
	}
	return pw.pieces[i], Interval{
		Lo: new(big.Rat).Set(pw.breaks[i]),
		Hi: new(big.Rat).Set(pw.breaks[i+1]),
	}, nil
}

// pieceIndex locates the piece containing x, preferring the left piece at
// interior breakpoints. Returns -1 when x is outside the domain.
func (pw *Piecewise) pieceIndex(x *big.Rat) int {
	if x.Cmp(pw.breaks[0]) < 0 || x.Cmp(pw.breaks[len(pw.breaks)-1]) > 0 {
		return -1
	}
	for i := 1; i < len(pw.breaks); i++ {
		if x.Cmp(pw.breaks[i]) <= 0 {
			return i - 1
		}
	}
	return len(pw.pieces) - 1
}

// Eval evaluates the piecewise function exactly at the rational x.
// It returns an error when x is outside the domain.
func (pw *Piecewise) Eval(x *big.Rat) (*big.Rat, error) {
	i := pw.pieceIndex(x)
	if i < 0 {
		lo, hi := pw.Domain()
		return nil, fmt.Errorf("poly: %v outside piecewise domain [%v, %v]", x, lo, hi)
	}
	return pw.pieces[i].Eval(x), nil
}

// EvalFloat evaluates the piecewise function at a float64 point, clamping
// to the domain boundary values.
func (pw *Piecewise) EvalFloat(x float64) float64 {
	r := new(big.Rat).SetFloat64(x)
	if r == nil {
		return 0
	}
	lo, hi := pw.Domain()
	if r.Cmp(lo) < 0 {
		r = lo
	}
	if r.Cmp(hi) > 0 {
		r = hi
	}
	v, err := pw.Eval(r)
	if err != nil {
		return 0
	}
	f, _ := v.Float64()
	return f
}

// Derivative returns the piecewise derivative (pieces differentiated
// individually; values at breakpoints follow the left piece).
func (pw *Piecewise) Derivative() *Piecewise {
	pieces := make([]RatPoly, len(pw.pieces))
	for i, p := range pw.pieces {
		pieces[i] = p.Derivative()
	}
	out, err := NewPiecewise(pw.breaks, pieces)
	if err != nil {
		// Unreachable: breaks/pieces invariants already hold.
		panic(err)
	}
	return out
}

// IsContinuous reports whether adjacent pieces agree exactly at every
// interior breakpoint.
func (pw *Piecewise) IsContinuous() bool {
	for i := 1; i < len(pw.pieces); i++ {
		b := pw.breaks[i]
		if pw.pieces[i-1].Eval(b).Cmp(pw.pieces[i].Eval(b)) != 0 {
			return false
		}
	}
	return true
}

// Extremum describes a certified global extremum of a piecewise polynomial.
type Extremum struct {
	// X encloses the extremizing argument; for rational extremizers
	// Lo == Hi.
	X Interval
	// Value is the function value at the midpoint of X (exact when X is
	// degenerate).
	Value *big.Rat
	// PieceIndex is the index of the piece on which the extremum occurs.
	PieceIndex int
	// Critical polynomial whose root the extremizer is, when the extremum
	// is interior (nil for endpoint extrema).
	Critical *RatPoly
}

// GlobalMax locates the global maximum of the piecewise function over its
// domain. Candidates are all breakpoints plus every root of each piece's
// derivative inside that piece, isolated by Sturm sequences and refined to
// the given positive rational tolerance. Ties are resolved toward the
// smaller argument.
func (pw *Piecewise) GlobalMax(tol *big.Rat) (Extremum, error) {
	if tol == nil || tol.Sign() <= 0 {
		return Extremum{}, fmt.Errorf("poly: non-positive tolerance for GlobalMax")
	}
	var best Extremum
	haveBest := false
	consider := func(x Interval, pieceIdx int, critical *RatPoly) {
		mid := x.Mid()
		val := pw.pieces[pieceIdx].Eval(mid)
		if !haveBest || val.Cmp(best.Value) > 0 {
			best = Extremum{X: x, Value: val, PieceIndex: pieceIdx, Critical: critical}
			haveBest = true
		}
	}
	for i, piece := range pw.pieces {
		lo, hi := pw.breaks[i], pw.breaks[i+1]
		consider(Interval{Lo: new(big.Rat).Set(lo), Hi: new(big.Rat).Set(lo)}, i, nil)
		consider(Interval{Lo: new(big.Rat).Set(hi), Hi: new(big.Rat).Set(hi)}, i, nil)
		d := piece.Derivative()
		if d.IsZero() || d.Degree() < 1 {
			continue
		}
		ivs, err := IsolateRoots(d, lo, hi)
		if err != nil {
			return Extremum{}, fmt.Errorf("poly: isolating critical points of piece %d: %w", i, err)
		}
		for _, iv := range ivs {
			refined, err := RefineRoot(d, iv, tol)
			if err != nil {
				return Extremum{}, fmt.Errorf("poly: refining critical point of piece %d: %w", i, err)
			}
			dCopy := d
			consider(refined, i, &dCopy)
		}
	}
	if !haveBest {
		return Extremum{}, fmt.Errorf("poly: empty piecewise function")
	}
	return best, nil
}

// String renders the piecewise function piece by piece.
func (pw *Piecewise) String() string {
	var b strings.Builder
	for i, p := range pw.pieces {
		fmt.Fprintf(&b, "[%s, %s]: %s", pw.breaks[i].RatString(), pw.breaks[i+1].RatString(), p)
		if i < len(pw.pieces)-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
