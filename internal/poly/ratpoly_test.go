package poly

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestRatPolyConstructorsAndAccessors(t *testing.T) {
	p := RatPolyFromInt64(1, 0, 3) // 1 + 3x^2
	if p.Degree() != 2 {
		t.Errorf("degree = %d, want 2", p.Degree())
	}
	if p.Coeff(0).Cmp(rat(1, 1)) != 0 || p.Coeff(1).Sign() != 0 || p.Coeff(2).Cmp(rat(3, 1)) != 0 {
		t.Errorf("coefficients wrong: %v", p.Coeffs())
	}
	if p.Coeff(-1).Sign() != 0 || p.Coeff(5).Sign() != 0 {
		t.Error("out-of-range Coeff should be 0")
	}
	if p.LeadingCoeff().Cmp(rat(3, 1)) != 0 {
		t.Errorf("leading coeff = %v, want 3", p.LeadingCoeff())
	}

	z := RatPolyFromInt64()
	if !z.IsZero() || z.Degree() != -1 || z.LeadingCoeff().Sign() != 0 {
		t.Error("zero polynomial invariants violated")
	}
	trimmed := RatPolyFromInt64(2, 1, 0, 0)
	if trimmed.Degree() != 1 {
		t.Errorf("trailing zeros not trimmed: degree %d", trimmed.Degree())
	}
}

func TestNewRatPolyCopiesAndHandlesNil(t *testing.T) {
	c := []*big.Rat{rat(1, 2), nil, rat(3, 4)}
	p := NewRatPoly(c)
	c[0].SetInt64(99) // mutating the input must not affect p
	if p.Coeff(0).Cmp(rat(1, 2)) != 0 {
		t.Error("NewRatPoly did not deep-copy coefficients")
	}
	if p.Coeff(1).Sign() != 0 {
		t.Error("nil coefficient should read as 0")
	}
}

func TestRatPolyFromFracs(t *testing.T) {
	p, err := RatPolyFromFracs([]int64{1, -3}, []int64{6, 2}) // 1/6 - 3/2 x
	if err != nil {
		t.Fatal(err)
	}
	if p.Coeff(0).Cmp(rat(1, 6)) != 0 || p.Coeff(1).Cmp(rat(-3, 2)) != 0 {
		t.Errorf("wrong coefficients: %v", p)
	}
	if _, err := RatPolyFromFracs([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := RatPolyFromFracs([]int64{1}, []int64{0}); err == nil {
		t.Error("zero denominator: expected error")
	}
}

func TestRatPolyArithmetic(t *testing.T) {
	p := RatPolyFromInt64(1, 2)  // 1 + 2x
	q := RatPolyFromInt64(3, -2) // 3 - 2x
	sum := p.Add(q)
	if !sum.Equal(RatPolyFromInt64(4)) {
		t.Errorf("(1+2x) + (3-2x) = %v, want 4", sum)
	}
	diff := p.Sub(q)
	if !diff.Equal(RatPolyFromInt64(-2, 4)) {
		t.Errorf("(1+2x) - (3-2x) = %v, want -2+4x", diff)
	}
	prod := p.Mul(q)
	if !prod.Equal(RatPolyFromInt64(3, 4, -4)) {
		t.Errorf("(1+2x)(3-2x) = %v, want 3+4x-4x^2", prod)
	}
	if !p.Mul(RatPoly{}).IsZero() || !(RatPoly{}).Mul(p).IsZero() {
		t.Error("multiplication by zero polynomial should be zero")
	}
	if !p.Scale(rat(0, 1)).IsZero() {
		t.Error("scaling by 0 should give zero polynomial")
	}
	if !p.Scale(nil).IsZero() {
		t.Error("scaling by nil should give zero polynomial")
	}
	if !p.Scale(rat(2, 1)).Equal(RatPolyFromInt64(2, 4)) {
		t.Error("Scale(2) wrong")
	}
	if !p.Neg().Equal(RatPolyFromInt64(-1, -2)) {
		t.Error("Neg wrong")
	}
}

func TestRatPolyPow(t *testing.T) {
	p := RatPolyFromInt64(1, 1) // 1 + x
	cube, err := p.Pow(3)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.Equal(RatPolyFromInt64(1, 3, 3, 1)) {
		t.Errorf("(1+x)^3 = %v, want 1+3x+3x^2+x^3", cube)
	}
	one, err := p.Pow(0)
	if err != nil {
		t.Fatal(err)
	}
	if !one.Equal(RatPolyFromInt64(1)) {
		t.Errorf("(1+x)^0 = %v, want 1", one)
	}
	if _, err := p.Pow(-1); err == nil {
		t.Error("negative exponent: expected error")
	}
	zeroSq, err := RatPoly{}.Pow(2)
	if err != nil || !zeroSq.IsZero() {
		t.Error("0^2 should be zero polynomial")
	}
}

func TestRatPolyCalculus(t *testing.T) {
	p := RatPolyFromInt64(5, 0, 3, 2) // 5 + 3x^2 + 2x^3
	d := p.Derivative()
	if !d.Equal(RatPolyFromInt64(0, 6, 6)) {
		t.Errorf("derivative = %v, want 6x+6x^2", d)
	}
	if !RatPolyFromInt64(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
	anti := d.AntiDerivative()
	// AntiDerivative of 6x + 6x^2 = 3x^2 + 2x^3; p minus its constant term.
	if !anti.Equal(RatPolyFromInt64(0, 0, 3, 2)) {
		t.Errorf("antiderivative = %v, want 3x^2+2x^3", anti)
	}
	if !(RatPoly{}).AntiDerivative().IsZero() {
		t.Error("antiderivative of zero should be zero")
	}
}

func TestRatPolyDerivativeAntiDerivativeRoundTripProperty(t *testing.T) {
	f := func(c0, c1, c2, c3 int16) bool {
		p := RatPolyFromInt64(int64(c0), int64(c1), int64(c2), int64(c3))
		// d/dx of antiderivative is identity.
		return p.AntiDerivative().Derivative().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatPolyEval(t *testing.T) {
	p := RatPolyFromInt64(1, -2, 1) // (x-1)^2
	if p.Eval(rat(1, 1)).Sign() != 0 {
		t.Error("(x-1)^2 at 1 should be 0")
	}
	if p.Eval(rat(3, 1)).Cmp(rat(4, 1)) != 0 {
		t.Error("(x-1)^2 at 3 should be 4")
	}
	if got := p.EvalFloat(3); got != 4 {
		t.Errorf("EvalFloat(3) = %g, want 4", got)
	}
	if (RatPoly{}).Eval(rat(5, 1)).Sign() != 0 {
		t.Error("zero polynomial should evaluate to 0")
	}
}

func TestRatPolyEvalMatchesFloatProperty(t *testing.T) {
	f := func(c0, c1, c2 int16, xi int8) bool {
		p := RatPolyFromInt64(int64(c0), int64(c1), int64(c2))
		x := float64(xi) / 16
		exact := p.Eval(new(big.Rat).SetFloat64(x))
		ef, _ := exact.Float64()
		return math.Abs(p.EvalFloat(x)-ef) <= 1e-9*math.Max(1, math.Abs(ef))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatPolyCompose(t *testing.T) {
	p := RatPolyFromInt64(0, 0, 1) // x^2
	q := RatPolyFromInt64(1, 1)    // 1 + x
	comp := p.Compose(q)
	if !comp.Equal(RatPolyFromInt64(1, 2, 1)) {
		t.Errorf("(1+x)^2 via Compose = %v", comp)
	}
	aff := p.ComposeAffine(rat(1, 1), rat(2, 1)) // (1+2x)^2
	if !aff.Equal(RatPolyFromInt64(1, 4, 4)) {
		t.Errorf("(1+2x)^2 via ComposeAffine = %v", aff)
	}
}

func TestRatPolyComposeAffineMatchesEvalProperty(t *testing.T) {
	f := func(c0, c1, c2, a, b, xi int8) bool {
		p := RatPolyFromInt64(int64(c0), int64(c1), int64(c2))
		ar, br := rat(int64(a), 4), rat(int64(b), 4)
		comp := p.ComposeAffine(ar, br)
		x := rat(int64(xi), 8)
		inner := new(big.Rat).Mul(br, x)
		inner.Add(inner, ar)
		return comp.Eval(x).Cmp(p.Eval(inner)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatPolyDivide(t *testing.T) {
	// x^3 - 1 = (x - 1)(x^2 + x + 1).
	p := RatPolyFromInt64(-1, 0, 0, 1)
	q := RatPolyFromInt64(-1, 1)
	quo, rem, err := p.Divide(q)
	if err != nil {
		t.Fatal(err)
	}
	if !quo.Equal(RatPolyFromInt64(1, 1, 1)) || !rem.IsZero() {
		t.Errorf("x^3-1 / (x-1): quo=%v rem=%v", quo, rem)
	}
	// Degree of dividend smaller than divisor.
	quo, rem, err = q.Divide(p)
	if err != nil {
		t.Fatal(err)
	}
	if !quo.IsZero() || !rem.Equal(q) {
		t.Errorf("small/large division: quo=%v rem=%v", quo, rem)
	}
	if _, _, err := p.Divide(RatPoly{}); err == nil {
		t.Error("division by zero polynomial: expected error")
	}
}

func TestRatPolyDivideRoundTripProperty(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1 int8) bool {
		p := RatPolyFromInt64(int64(a0), int64(a1), int64(a2), int64(a3))
		q := RatPolyFromInt64(int64(b0), int64(b1), 1) // monic, never zero
		quo, rem, err := p.Divide(q)
		if err != nil {
			return false
		}
		if !rem.IsZero() && rem.Degree() >= q.Degree() {
			return false
		}
		return quo.Mul(q).Add(rem).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatPolyGCD(t *testing.T) {
	// gcd((x-1)^2 (x+2), (x-1)(x+3)) = x - 1 (monic).
	xm1 := RatPolyFromInt64(-1, 1)
	p := xm1.Mul(xm1).Mul(RatPolyFromInt64(2, 1))
	q := xm1.Mul(RatPolyFromInt64(3, 1))
	g := p.GCD(q)
	if !g.Equal(xm1) {
		t.Errorf("gcd = %v, want x-1", g)
	}
	if !p.GCD(RatPoly{}).Equal(p.Scale(new(big.Rat).Inv(p.LeadingCoeff()))) {
		t.Error("gcd(p, 0) should be monic p")
	}
	if !(RatPoly{}).GCD(RatPoly{}).IsZero() {
		t.Error("gcd(0, 0) should be 0")
	}
}

func TestRatPolySquareFree(t *testing.T) {
	xm1 := RatPolyFromInt64(-1, 1)
	xp2 := RatPolyFromInt64(2, 1)
	p := xm1.Mul(xm1).Mul(xm1).Mul(xp2) // (x-1)^3 (x+2)
	sf := p.SquareFree()
	want := xm1.Mul(xp2)
	// SquareFree result can differ by a constant; compare monic forms.
	sfMonic := sf.Scale(new(big.Rat).Inv(sf.LeadingCoeff()))
	wantMonic := want.Scale(new(big.Rat).Inv(want.LeadingCoeff()))
	if !sfMonic.Equal(wantMonic) {
		t.Errorf("square-free part = %v, want %v", sfMonic, wantMonic)
	}
	lin := RatPolyFromInt64(4, 2)
	if !lin.SquareFree().Equal(lin) {
		t.Error("square-free of degree-1 polynomial should be itself")
	}
}

func TestRatPolyString(t *testing.T) {
	cases := []struct {
		p    RatPoly
		want string
	}{
		{RatPoly{}, "0"},
		{RatPolyFromInt64(3), "3"},
		{RatPolyFromInt64(0, 1), "x"},
		{RatPolyFromInt64(-1, 0, 2), "2·x^2 - 1"},
		{NewRatPoly([]*big.Rat{rat(1, 6), rat(-3, 2)}), "-3/2·x + 1/6"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRatPolyFloatConversion(t *testing.T) {
	p := NewRatPoly([]*big.Rat{rat(1, 2), rat(-1, 4)})
	f := p.Float()
	if f.Coeff(0) != 0.5 || f.Coeff(1) != -0.25 {
		t.Errorf("Float() coefficients = %v", f.Coeffs())
	}
}

func TestRatPolyRingAxiomsProperty(t *testing.T) {
	mk := func(a, b, c int8) RatPoly {
		return RatPolyFromInt64(int64(a), int64(b), int64(c))
	}
	f := func(a0, a1, a2, b0, b1, b2, c0, c1, c2 int8) bool {
		p, q, r := mk(a0, a1, a2), mk(b0, b1, b2), mk(c0, c1, c2)
		if !p.Add(q).Equal(q.Add(p)) {
			return false
		}
		if !p.Mul(q).Equal(q.Mul(p)) {
			return false
		}
		if !p.Mul(q.Add(r)).Equal(p.Mul(q).Add(p.Mul(r))) {
			return false
		}
		return p.Mul(q).Mul(r).Equal(p.Mul(q.Mul(r)))
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
