package poly_test

import (
	"fmt"
	"math/big"

	"repro/internal/poly"
)

// ExampleRatPoly builds the paper's Section 5.2.1 optimality condition
// β² - 2β + 6/7 and evaluates it exactly.
func ExampleRatPoly() {
	cond, err := poly.RatPolyFromFracs([]int64{6, -2, 1}, []int64{7, 1, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("condition:", cond)
	fmt.Println("value at 1/2:", cond.Eval(big.NewRat(1, 2)).RatString())
	// Output:
	// condition: x^2 - 2·x + 6/7
	// value at 1/2: 3/28
}

// ExampleRoots isolates and refines the real roots of the Section 5.2.1
// optimality condition inside (0, 1) with Sturm sequences.
func ExampleRoots() {
	cond, err := poly.RatPolyFromFracs([]int64{6, -2, 1}, []int64{7, 1, 1})
	if err != nil {
		panic(err)
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	roots, err := poly.Roots(cond, new(big.Rat), big.NewRat(1, 1), tol)
	if err != nil {
		panic(err)
	}
	fmt.Printf("roots in [0, 1]: %d\n", len(roots))
	fmt.Printf("β* = %.12f\n", roots[0])
	// Output:
	// roots in [0, 1]: 1
	// β* = 0.622035526991
}

// ExamplePiecewise assembles the paper's n=3, δ=1 winning probability and
// finds its certified global maximum.
func ExamplePiecewise() {
	low, err := poly.RatPolyFromFracs([]int64{1, 0, 3, -1}, []int64{6, 1, 2, 2})
	if err != nil {
		panic(err)
	}
	high, err := poly.RatPolyFromFracs([]int64{-11, 9, -21, 7}, []int64{6, 1, 2, 2})
	if err != nil {
		panic(err)
	}
	pw, err := poly.NewPiecewise(
		[]*big.Rat{new(big.Rat), big.NewRat(1, 2), big.NewRat(1, 1)},
		[]poly.RatPoly{low, high},
	)
	if err != nil {
		panic(err)
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	ext, err := pw.GlobalMax(tol)
	if err != nil {
		panic(err)
	}
	val, _ := ext.Value.Float64()
	fmt.Printf("max P = %.6f at β = %.6f (piece %d)\n", val, ext.X.MidFloat(), ext.PieceIndex)
	// Output:
	// max P = 0.544631 at β = 0.622036 (piece 1)
}
