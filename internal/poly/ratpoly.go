package poly

import (
	"fmt"
	"math/big"
	"strings"
)

// RatPoly is a univariate polynomial with exact rational coefficients,
// stored in ascending order of degree. The zero polynomial has an empty
// coefficient slice. RatPoly values are immutable by convention: all
// methods return new polynomials and never modify their receivers or
// arguments.
type RatPoly struct {
	coeffs []*big.Rat
}

// NewRatPoly builds a polynomial from ascending coefficients. The input
// slice is deep-copied; trailing zeros are trimmed.
func NewRatPoly(coeffs []*big.Rat) RatPoly {
	cp := make([]*big.Rat, len(coeffs))
	for i, c := range coeffs {
		if c == nil {
			cp[i] = new(big.Rat)
		} else {
			cp[i] = new(big.Rat).Set(c)
		}
	}
	return RatPoly{coeffs: trimRat(cp)}
}

// RatPolyFromInt64 builds a polynomial with integer coefficients given in
// ascending order.
func RatPolyFromInt64(coeffs ...int64) RatPoly {
	cp := make([]*big.Rat, len(coeffs))
	for i, c := range coeffs {
		cp[i] = new(big.Rat).SetInt64(c)
	}
	return RatPoly{coeffs: trimRat(cp)}
}

// RatPolyFromFracs builds a polynomial whose coefficient of x^i is
// nums[i]/dens[i], given in ascending order. It returns an error if the
// slices have different lengths or any denominator is zero.
func RatPolyFromFracs(nums, dens []int64) (RatPoly, error) {
	if len(nums) != len(dens) {
		return RatPoly{}, fmt.Errorf("poly: %d numerators but %d denominators", len(nums), len(dens))
	}
	cp := make([]*big.Rat, len(nums))
	for i := range nums {
		if dens[i] == 0 {
			return RatPoly{}, fmt.Errorf("poly: zero denominator at coefficient %d", i)
		}
		cp[i] = big.NewRat(nums[i], dens[i])
	}
	return RatPoly{coeffs: trimRat(cp)}, nil
}

// RatPolyConstant returns the constant polynomial c.
func RatPolyConstant(c *big.Rat) RatPoly {
	if c == nil || c.Sign() == 0 {
		return RatPoly{}
	}
	return RatPoly{coeffs: []*big.Rat{new(big.Rat).Set(c)}}
}

// RatPolyX returns the monomial x.
func RatPolyX() RatPoly {
	return RatPoly{coeffs: []*big.Rat{new(big.Rat), big.NewRat(1, 1)}}
}

// RatPolyAffine returns the polynomial a + b·x.
func RatPolyAffine(a, b *big.Rat) RatPoly {
	return NewRatPoly([]*big.Rat{a, b})
}

func trimRat(cs []*big.Rat) []*big.Rat {
	n := len(cs)
	for n > 0 && cs[n-1].Sign() == 0 {
		n--
	}
	return cs[:n]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p RatPoly) Degree() int { return len(p.coeffs) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p RatPoly) IsZero() bool { return len(p.coeffs) == 0 }

// Coeff returns a copy of the coefficient of x^i (zero beyond the degree).
func (p RatPoly) Coeff(i int) *big.Rat {
	if i < 0 || i >= len(p.coeffs) {
		return new(big.Rat)
	}
	return new(big.Rat).Set(p.coeffs[i])
}

// Coeffs returns a deep copy of the ascending coefficient slice.
func (p RatPoly) Coeffs() []*big.Rat {
	out := make([]*big.Rat, len(p.coeffs))
	for i, c := range p.coeffs {
		out[i] = new(big.Rat).Set(c)
	}
	return out
}

// LeadingCoeff returns a copy of the leading coefficient (0 for the zero
// polynomial).
func (p RatPoly) LeadingCoeff() *big.Rat {
	if p.IsZero() {
		return new(big.Rat)
	}
	return new(big.Rat).Set(p.coeffs[len(p.coeffs)-1])
}

// Equal reports whether p and q have identical coefficients.
func (p RatPoly) Equal(q RatPoly) bool {
	if len(p.coeffs) != len(q.coeffs) {
		return false
	}
	for i := range p.coeffs {
		if p.coeffs[i].Cmp(q.coeffs[i]) != 0 {
			return false
		}
	}
	return true
}

// Add returns p + q.
func (p RatPoly) Add(q RatPoly) RatPoly {
	n := max(len(p.coeffs), len(q.coeffs))
	out := make([]*big.Rat, n)
	for i := range out {
		out[i] = new(big.Rat)
		if i < len(p.coeffs) {
			out[i].Add(out[i], p.coeffs[i])
		}
		if i < len(q.coeffs) {
			out[i].Add(out[i], q.coeffs[i])
		}
	}
	return RatPoly{coeffs: trimRat(out)}
}

// Sub returns p - q.
func (p RatPoly) Sub(q RatPoly) RatPoly {
	return p.Add(q.Neg())
}

// Neg returns -p.
func (p RatPoly) Neg() RatPoly {
	out := make([]*big.Rat, len(p.coeffs))
	for i, c := range p.coeffs {
		out[i] = new(big.Rat).Neg(c)
	}
	return RatPoly{coeffs: out}
}

// Scale returns c·p.
func (p RatPoly) Scale(c *big.Rat) RatPoly {
	if c == nil || c.Sign() == 0 || p.IsZero() {
		return RatPoly{}
	}
	out := make([]*big.Rat, len(p.coeffs))
	for i, pc := range p.coeffs {
		out[i] = new(big.Rat).Mul(pc, c)
	}
	return RatPoly{coeffs: out}
}

// Mul returns p · q.
func (p RatPoly) Mul(q RatPoly) RatPoly {
	if p.IsZero() || q.IsZero() {
		return RatPoly{}
	}
	out := make([]*big.Rat, len(p.coeffs)+len(q.coeffs)-1)
	for i := range out {
		out[i] = new(big.Rat)
	}
	tmp := new(big.Rat)
	for i, pc := range p.coeffs {
		if pc.Sign() == 0 {
			continue
		}
		for j, qc := range q.coeffs {
			if qc.Sign() == 0 {
				continue
			}
			tmp.Mul(pc, qc)
			out[i+j].Add(out[i+j], tmp)
		}
	}
	return RatPoly{coeffs: trimRat(out)}
}

// Pow returns p raised to the non-negative integer power k.
// It returns an error if k is negative.
func (p RatPoly) Pow(k int) (RatPoly, error) {
	if k < 0 {
		return RatPoly{}, fmt.Errorf("poly: negative exponent %d", k)
	}
	result := RatPolyFromInt64(1)
	base := p
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result, nil
}

// Derivative returns dp/dx.
func (p RatPoly) Derivative() RatPoly {
	if len(p.coeffs) <= 1 {
		return RatPoly{}
	}
	out := make([]*big.Rat, len(p.coeffs)-1)
	for i := 1; i < len(p.coeffs); i++ {
		out[i-1] = new(big.Rat).Mul(p.coeffs[i], new(big.Rat).SetInt64(int64(i)))
	}
	return RatPoly{coeffs: trimRat(out)}
}

// AntiDerivative returns the antiderivative of p with constant term 0.
func (p RatPoly) AntiDerivative() RatPoly {
	if p.IsZero() {
		return RatPoly{}
	}
	out := make([]*big.Rat, len(p.coeffs)+1)
	out[0] = new(big.Rat)
	for i, c := range p.coeffs {
		out[i+1] = new(big.Rat).Mul(c, big.NewRat(1, int64(i+1)))
	}
	return RatPoly{coeffs: trimRat(out)}
}

// Eval evaluates p at the rational point x exactly, using Horner's scheme.
func (p RatPoly) Eval(x *big.Rat) *big.Rat {
	result := new(big.Rat)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		result.Mul(result, x)
		result.Add(result, p.coeffs[i])
	}
	return result
}

// EvalFloat evaluates p at the float64 point x using Horner's scheme on
// float64-converted coefficients.
func (p RatPoly) EvalFloat(x float64) float64 {
	var result float64
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		c, _ := p.coeffs[i].Float64()
		result = result*x + c
	}
	return result
}

// ComposeAffine returns p(a + b·x), expanded.
func (p RatPoly) ComposeAffine(a, b *big.Rat) RatPoly {
	// Horner in the polynomial ring: result = result*(a + b x) + c_i.
	affine := RatPolyAffine(a, b)
	result := RatPoly{}
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		result = result.Mul(affine).Add(RatPolyConstant(p.coeffs[i]))
	}
	return result
}

// Compose returns p(q(x)), expanded.
func (p RatPoly) Compose(q RatPoly) RatPoly {
	result := RatPoly{}
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		result = result.Mul(q).Add(RatPolyConstant(p.coeffs[i]))
	}
	return result
}

// Divide returns the quotient and remainder of p divided by q, so that
// p = quo·q + rem with deg(rem) < deg(q). It returns an error if q is zero.
func (p RatPoly) Divide(q RatPoly) (quo, rem RatPoly, err error) {
	if q.IsZero() {
		return RatPoly{}, RatPoly{}, fmt.Errorf("poly: division by zero polynomial")
	}
	remC := p.Coeffs()
	dq := q.Degree()
	lead := q.coeffs[dq]
	if len(remC)-1 < dq {
		return RatPoly{}, RatPoly{coeffs: trimRat(remC)}, nil
	}
	quoC := make([]*big.Rat, len(remC)-dq)
	for i := range quoC {
		quoC[i] = new(big.Rat)
	}
	tmp := new(big.Rat)
	for d := len(remC) - 1; d >= dq; d-- {
		if remC[d].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Quo(remC[d], lead)
		quoC[d-dq].Set(factor)
		for j := 0; j <= dq; j++ {
			tmp.Mul(factor, q.coeffs[j])
			remC[d-dq+j].Sub(remC[d-dq+j], tmp)
		}
	}
	return RatPoly{coeffs: trimRat(quoC)}, RatPoly{coeffs: trimRat(remC)}, nil
}

// GCD returns the monic greatest common divisor of p and q (the zero
// polynomial if both are zero).
func (p RatPoly) GCD(q RatPoly) RatPoly {
	a, b := p, q
	for !b.IsZero() {
		_, r, err := a.Divide(b)
		if err != nil {
			// Unreachable: b is non-zero inside the loop.
			return RatPoly{}
		}
		a, b = b, r
	}
	if a.IsZero() {
		return RatPoly{}
	}
	inv := new(big.Rat).Inv(a.LeadingCoeff())
	return a.Scale(inv)
}

// SquareFree returns p with repeated roots collapsed to simple ones, that
// is, p / gcd(p, p'). The result has the same distinct real roots as p.
func (p RatPoly) SquareFree() RatPoly {
	if p.Degree() < 1 {
		return p
	}
	g := p.GCD(p.Derivative())
	if g.Degree() < 1 {
		return p
	}
	quo, _, err := p.Divide(g)
	if err != nil {
		return p
	}
	return quo
}

// String renders p in human-readable form, highest degree first.
func (p RatPoly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		c := p.coeffs[i]
		if c.Sign() == 0 {
			continue
		}
		if !first {
			if c.Sign() > 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
			}
		} else if c.Sign() < 0 {
			b.WriteString("-")
		}
		first = false
		mag := new(big.Rat).Abs(c)
		switch {
		case i == 0:
			b.WriteString(mag.RatString())
		case mag.Cmp(big.NewRat(1, 1)) == 0:
			// omit unit coefficient
		default:
			b.WriteString(mag.RatString())
			b.WriteString("·")
		}
		switch {
		case i == 1:
			b.WriteString("x")
		case i > 1:
			fmt.Fprintf(&b, "x^%d", i)
		}
	}
	return b.String()
}

// Float converts p to a float64-coefficient polynomial.
func (p RatPoly) Float() Poly {
	out := make([]float64, len(p.coeffs))
	for i, c := range p.coeffs {
		out[i], _ = c.Float64()
	}
	return NewPoly(out)
}
