// Package poly implements univariate polynomial algebra in two numeric
// domains: exact rationals (RatPoly, over math/big.Rat) and float64 (Poly).
//
// The reproduction uses polynomials to derive and solve the paper's
// optimality conditions symbolically rather than only numerically:
//
//   - Section 5.2 of the paper expands the winning probability of a
//     symmetric single-threshold algorithm into a piecewise polynomial in
//     the common threshold β. Piecewise (piecewise.go) represents such
//     functions with exact rational breakpoints and exact coefficients.
//   - Optimal thresholds are roots of the derivative. Sturm sequences
//     (sturm.go) isolate all real roots exactly, and rational bisection
//     refines them to any requested accuracy, so the optimum β* and the
//     optimal winning probability are obtained with certified enclosures
//     instead of heuristic numeric optimization.
//
// Coefficients are stored in ascending order (index i holds the coefficient
// of x^i) with no trailing zero terms; the zero polynomial has an empty
// coefficient slice and degree -1.
package poly
