package poly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolyConstructionAndAccessors(t *testing.T) {
	p := PolyFromCoeffs(1, 0, 2, 0, 0) // 1 + 2x^2, trailing zeros trimmed
	if p.Degree() != 2 {
		t.Errorf("degree = %d, want 2", p.Degree())
	}
	if p.Coeff(0) != 1 || p.Coeff(1) != 0 || p.Coeff(2) != 2 {
		t.Errorf("coefficients = %v", p.Coeffs())
	}
	if p.Coeff(-1) != 0 || p.Coeff(9) != 0 {
		t.Error("out-of-range Coeff should be 0")
	}
	var z Poly
	if !z.IsZero() || z.Degree() != -1 || z.Eval(3) != 0 {
		t.Error("zero polynomial invariants violated")
	}
}

func TestNewPolyCopiesInput(t *testing.T) {
	in := []float64{1, 2}
	p := NewPoly(in)
	in[0] = 50
	if p.Coeff(0) != 1 {
		t.Error("NewPoly did not copy input slice")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	p := PolyFromCoeffs(-6, 11, -6, 1) // (x-1)(x-2)(x-3)
	for _, root := range []float64{1, 2, 3} {
		if v := p.Eval(root); math.Abs(v) > 1e-12 {
			t.Errorf("p(%g) = %g, want 0", root, v)
		}
	}
	if v := p.Eval(0); v != -6 {
		t.Errorf("p(0) = %g, want -6", v)
	}
}

func TestPolyArithmetic(t *testing.T) {
	p := PolyFromCoeffs(1, 2)
	q := PolyFromCoeffs(3, -2)
	if got := p.Add(q); got.Degree() != 0 || got.Coeff(0) != 4 {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got.Coeff(0) != -2 || got.Coeff(1) != 4 {
		t.Errorf("Sub = %v", got)
	}
	prod := p.Mul(q)
	want := PolyFromCoeffs(3, 4, -4)
	for i := 0; i <= 2; i++ {
		if prod.Coeff(i) != want.Coeff(i) {
			t.Errorf("Mul coeff %d = %g, want %g", i, prod.Coeff(i), want.Coeff(i))
		}
	}
	if !p.Mul(Poly{}).IsZero() {
		t.Error("Mul by zero should be zero")
	}
	if got := p.Scale(2); got.Coeff(1) != 4 {
		t.Errorf("Scale = %v", got)
	}
}

func TestPolyDerivative(t *testing.T) {
	p := PolyFromCoeffs(5, 0, 3, 2)
	d := p.Derivative()
	if d.Coeff(0) != 0 || d.Coeff(1) != 6 || d.Coeff(2) != 6 {
		t.Errorf("derivative = %v", d.Coeffs())
	}
	if !PolyFromCoeffs(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestPolyNewtonRefine(t *testing.T) {
	p := PolyFromCoeffs(-2, 0, 1) // x^2 - 2
	root, err := p.NewtonRefine(1.5, 1, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("refined root = %v, want sqrt(2)", root)
	}
	if _, err := p.NewtonRefine(5, 1, 2, 1e-14); err == nil {
		t.Error("out-of-interval guess: expected error")
	}
	// Zero derivative at the guess on a flat polynomial.
	flat := PolyFromCoeffs(1)
	if _, err := flat.NewtonRefine(0.5, 0, 1, 1e-14); err == nil {
		t.Error("flat polynomial with no root: expected error")
	}
}

func TestPolyString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{Poly{}, "0"},
		{PolyFromCoeffs(3), "3"},
		{PolyFromCoeffs(0, 1), "x"},
		{PolyFromCoeffs(-1, 0, 2), "2·x^2 - 1"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPolyFloatMatchesRatProperty(t *testing.T) {
	f := func(c0, c1, c2, c3 int16, xi int8) bool {
		rp := RatPolyFromInt64(int64(c0), int64(c1), int64(c2), int64(c3))
		fp := rp.Float()
		x := float64(xi) / 32
		return math.Abs(fp.Eval(x)-rp.EvalFloat(x)) <= 1e-9*(1+math.Abs(rp.EvalFloat(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyMulEvalHomomorphismProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 int8, xi int8) bool {
		p := PolyFromCoeffs(float64(a0), float64(a1))
		q := PolyFromCoeffs(float64(b0), float64(b1))
		x := float64(xi) / 16
		lhs := p.Mul(q).Eval(x)
		rhs := p.Eval(x) * q.Eval(x)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
