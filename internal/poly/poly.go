package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a univariate polynomial with float64 coefficients in ascending
// order of degree. It is the fast-path companion of RatPoly: evaluation and
// calculus are cheap, but root finding and optimality certificates are done
// on the exact RatPoly side. Poly values are immutable by convention.
type Poly struct {
	coeffs []float64
}

// NewPoly builds a polynomial from ascending coefficients, copying the
// slice and trimming trailing zeros.
func NewPoly(coeffs []float64) Poly {
	n := len(coeffs)
	for n > 0 && coeffs[n-1] == 0 {
		n--
	}
	cp := make([]float64, n)
	copy(cp, coeffs[:n])
	return Poly{coeffs: cp}
}

// PolyFromCoeffs is a variadic convenience constructor for NewPoly.
func PolyFromCoeffs(coeffs ...float64) Poly { return NewPoly(coeffs) }

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.coeffs) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.coeffs) == 0 }

// Coeff returns the coefficient of x^i (zero beyond the degree).
func (p Poly) Coeff(i int) float64 {
	if i < 0 || i >= len(p.coeffs) {
		return 0
	}
	return p.coeffs[i]
}

// Coeffs returns a copy of the ascending coefficient slice.
func (p Poly) Coeffs() []float64 {
	out := make([]float64, len(p.coeffs))
	copy(out, p.coeffs)
	return out
}

// Eval evaluates p at x using Horner's scheme.
func (p Poly) Eval(x float64) float64 {
	var result float64
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		result = result*x + p.coeffs[i]
	}
	return result
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.coeffs), len(q.coeffs))
	out := make([]float64, n)
	for i := range out {
		if i < len(p.coeffs) {
			out[i] += p.coeffs[i]
		}
		if i < len(q.coeffs) {
			out[i] += q.coeffs[i]
		}
	}
	return NewPoly(out)
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p.coeffs), len(q.coeffs))
	out := make([]float64, n)
	for i := range out {
		if i < len(p.coeffs) {
			out[i] += p.coeffs[i]
		}
		if i < len(q.coeffs) {
			out[i] -= q.coeffs[i]
		}
	}
	return NewPoly(out)
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	out := make([]float64, len(p.coeffs)+len(q.coeffs)-1)
	for i, pc := range p.coeffs {
		for j, qc := range q.coeffs {
			out[i+j] += pc * qc
		}
	}
	return NewPoly(out)
}

// Scale returns c·p.
func (p Poly) Scale(c float64) Poly {
	out := make([]float64, len(p.coeffs))
	for i, pc := range p.coeffs {
		out[i] = c * pc
	}
	return NewPoly(out)
}

// Derivative returns dp/dx.
func (p Poly) Derivative() Poly {
	if len(p.coeffs) <= 1 {
		return Poly{}
	}
	out := make([]float64, len(p.coeffs)-1)
	for i := 1; i < len(p.coeffs); i++ {
		out[i-1] = float64(i) * p.coeffs[i]
	}
	return NewPoly(out)
}

// NewtonRefine polishes a root estimate x0 of p with Newton iterations,
// falling back to bisection behaviour by damping steps that leave
// [lo, hi]. It returns the refined root, or an error if the iteration
// fails to converge within 100 steps.
func (p Poly) NewtonRefine(x0, lo, hi, tol float64) (float64, error) {
	if !(lo <= x0 && x0 <= hi) {
		return 0, fmt.Errorf("poly: initial guess %g outside [%g, %g]", x0, lo, hi)
	}
	d := p.Derivative()
	x := x0
	for i := 0; i < 100; i++ {
		fx := p.Eval(x)
		if math.Abs(fx) <= tol {
			return x, nil
		}
		dx := d.Eval(x)
		if dx == 0 {
			return 0, fmt.Errorf("poly: zero derivative at %g during Newton refinement", x)
		}
		next := x - fx/dx
		if next < lo {
			next = (x + lo) / 2
		}
		if next > hi {
			next = (x + hi) / 2
		}
		if math.Abs(next-x) <= tol*math.Max(1, math.Abs(x)) {
			return next, nil
		}
		x = next
	}
	return 0, fmt.Errorf("poly: Newton refinement did not converge from %g", x0)
}

// String renders p in human-readable form, highest degree first.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		c := p.coeffs[i]
		if c == 0 {
			continue
		}
		if !first {
			if c > 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
			}
			c = math.Abs(c)
		}
		first = false
		switch {
		case i == 0:
			fmt.Fprintf(&b, "%g", c)
		case c == 1:
		case c == -1:
			b.WriteString("-")
		default:
			fmt.Fprintf(&b, "%g·", c)
		}
		switch {
		case i == 1:
			b.WriteString("x")
		case i > 1:
			fmt.Fprintf(&b, "x^%d", i)
		}
	}
	return b.String()
}
