package poly

import (
	"math"
	"math/big"
	"testing"
)

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: rat(1, 4), Hi: rat(3, 4)}
	if iv.Width().Cmp(rat(1, 2)) != 0 {
		t.Errorf("width = %v, want 1/2", iv.Width())
	}
	if iv.Mid().Cmp(rat(1, 2)) != 0 {
		t.Errorf("mid = %v, want 1/2", iv.Mid())
	}
	if iv.MidFloat() != 0.5 {
		t.Errorf("midFloat = %v, want 0.5", iv.MidFloat())
	}
}

func TestSturmCountRoots(t *testing.T) {
	// (x-1)(x-2)(x-3) has 3 roots in (0, 4], 2 in (1.5, 4], 0 in (5, 9].
	p := RatPolyFromInt64(-6, 11, -6, 1)
	s, err := NewSturmSequence(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi *big.Rat
		want   int
	}{
		{rat(0, 1), rat(4, 1), 3},
		{rat(3, 2), rat(4, 1), 2},
		{rat(5, 1), rat(9, 1), 0},
		{rat(0, 1), rat(1, 1), 1}, // root at right endpoint counts
		{rat(1, 1), rat(2, 1), 1}, // root at left endpoint excluded
		{rat(-10, 1), rat(10, 1), 3},
	}
	for _, c := range cases {
		got, err := s.CountRootsIn(c.lo, c.hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("roots in (%v, %v] = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
	if _, err := s.CountRootsIn(rat(2, 1), rat(1, 1)); err == nil {
		t.Error("inverted interval: expected error")
	}
}

func TestSturmZeroPolynomial(t *testing.T) {
	if _, err := NewSturmSequence(RatPoly{}); err == nil {
		t.Error("Sturm of zero polynomial: expected error")
	}
}

func TestSturmMultipleRootsCountedOnce(t *testing.T) {
	// (x-1)^2 (x+1): distinct roots are {-1, 1}.
	xm1 := RatPolyFromInt64(-1, 1)
	p := xm1.Mul(xm1).Mul(RatPolyFromInt64(1, 1))
	s, err := NewSturmSequence(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.CountRootsIn(rat(-2, 1), rat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("distinct roots = %d, want 2", got)
	}
}

func TestSturmConstantPolynomial(t *testing.T) {
	s, err := NewSturmSequence(RatPolyFromInt64(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.CountRootsIn(rat(-100, 1), rat(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("constant polynomial root count = %d, want 0", got)
	}
}

func TestIsolateRootsSeparatesAll(t *testing.T) {
	// Roots at 1/10, 1/2, 9/10 inside [0, 1].
	p := RatPolyAffine(rat(-1, 10), rat(1, 1)).
		Mul(RatPolyAffine(rat(-1, 2), rat(1, 1))).
		Mul(RatPolyAffine(rat(-9, 10), rat(1, 1)))
	ivs, err := IsolateRoots(p, rat(0, 1), rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("isolated %d intervals, want 3", len(ivs))
	}
	roots := []*big.Rat{rat(1, 10), rat(1, 2), rat(9, 10)}
	for _, r := range roots {
		found := 0
		for _, iv := range ivs {
			if r.Cmp(iv.Lo) > 0 && r.Cmp(iv.Hi) <= 0 || (iv.Lo.Cmp(iv.Hi) == 0 && r.Cmp(iv.Lo) == 0) {
				found++
			}
		}
		if found != 1 {
			t.Errorf("root %v contained in %d isolating intervals, want 1", r, found)
		}
	}
}

func TestIsolateRootsNoRoots(t *testing.T) {
	p := RatPolyFromInt64(1, 0, 1) // x^2 + 1
	ivs, err := IsolateRoots(p, rat(-5, 1), rat(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Errorf("x^2+1 isolated %d intervals, want 0", len(ivs))
	}
}

func TestIsolateRootsErrors(t *testing.T) {
	if _, err := IsolateRoots(RatPoly{}, rat(0, 1), rat(1, 1)); err == nil {
		t.Error("zero polynomial: expected error")
	}
	if _, err := IsolateRoots(RatPolyFromInt64(-1, 1), rat(1, 1), rat(0, 1)); err == nil {
		t.Error("inverted interval: expected error")
	}
}

func TestRefineRootSqrt2(t *testing.T) {
	p := RatPolyFromInt64(-2, 0, 1) // x^2 - 2
	ivs, err := IsolateRoots(p, rat(0, 1), rat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 {
		t.Fatalf("isolated %d intervals, want 1", len(ivs))
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	refined, err := RefineRoot(p, ivs[0], tol)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Width().Cmp(tol) > 0 {
		t.Errorf("refined width %v exceeds tolerance", refined.Width())
	}
	if math.Abs(refined.MidFloat()-math.Sqrt2) > 1e-15 {
		t.Errorf("refined root = %.17g, want sqrt(2) = %.17g", refined.MidFloat(), math.Sqrt2)
	}
}

func TestRefineRootExactHit(t *testing.T) {
	// Root exactly at 1/2; bisection should snap to the exact rational.
	p := RatPolyAffine(rat(-1, 2), rat(1, 1))
	refined, err := RefineRoot(p, Interval{Lo: rat(0, 1), Hi: rat(1, 1)}, rat(1, 1000000))
	if err != nil {
		t.Fatal(err)
	}
	if refined.Lo.Cmp(refined.Hi) != 0 || refined.Lo.Cmp(rat(1, 2)) != 0 {
		t.Errorf("refined = [%v, %v], want exactly 1/2", refined.Lo, refined.Hi)
	}
}

func TestRefineRootAtRightEndpoint(t *testing.T) {
	p := RatPolyAffine(rat(-1, 1), rat(1, 1)) // root at 1
	refined, err := RefineRoot(p, Interval{Lo: rat(0, 1), Hi: rat(1, 1)}, rat(1, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if refined.Lo.Cmp(rat(1, 1)) != 0 || refined.Hi.Cmp(rat(1, 1)) != 0 {
		t.Errorf("refined = [%v, %v], want degenerate at 1", refined.Lo, refined.Hi)
	}
}

func TestRefineRootDegenerateAndErrors(t *testing.T) {
	p := RatPolyFromInt64(-2, 0, 1)
	deg := Interval{Lo: rat(1, 2), Hi: rat(1, 2)}
	got, err := RefineRoot(p, deg, rat(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo.Cmp(deg.Lo) != 0 || got.Hi.Cmp(deg.Hi) != 0 {
		t.Error("degenerate interval should be returned unchanged")
	}
	if _, err := RefineRoot(p, deg, rat(0, 1)); err == nil {
		t.Error("zero tolerance: expected error")
	}
	if _, err := RefineRoot(p, deg, nil); err == nil {
		t.Error("nil tolerance: expected error")
	}
}

func TestRootsEndToEnd(t *testing.T) {
	// Wilkinson-lite: roots at 1..6 of Π (x-i).
	p := RatPolyFromInt64(1)
	for i := int64(1); i <= 6; i++ {
		p = p.Mul(RatPolyAffine(big.NewRat(-i, 1), rat(1, 1)))
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 50))
	roots, err := Roots(p, rat(0, 1), rat(10, 1), tol)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 6 {
		t.Fatalf("found %d roots, want 6: %v", len(roots), roots)
	}
	for i, r := range roots {
		if math.Abs(r-float64(i+1)) > 1e-12 {
			t.Errorf("root %d = %v, want %d", i, r, i+1)
		}
	}
}

func TestRootsIncludesLeftEndpoint(t *testing.T) {
	p := RatPolyFromInt64(0, 1) // root at 0
	roots, err := Roots(p, rat(0, 1), rat(1, 1), rat(1, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != 0 {
		t.Errorf("roots = %v, want [0]", roots)
	}
}

func TestRootsPaperOptimalityConditionN3(t *testing.T) {
	// Section 5.2.1: on β ∈ (1/2, 1] the derivative condition is
	// 9 - 21β + (21/2)β² = 0, i.e. β² - 2β + 6/7 = 0, whose root in (0,1)
	// is 1 - sqrt(1/7) ≈ 0.6220355269907727.
	p, err := RatPolyFromFracs([]int64{6, -2, 1}, []int64{7, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	roots, err := Roots(p, rat(0, 1), rat(1, 1), tol)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("found %d roots in (0,1), want 1: %v", len(roots), roots)
	}
	want := 1 - math.Sqrt(1.0/7.0)
	if math.Abs(roots[0]-want) > 1e-14 {
		t.Errorf("root = %.17g, want 1-sqrt(1/7) = %.17g", roots[0], want)
	}
}
