package poly

import (
	"fmt"
	"math/big"
)

// Interval is a closed rational interval [Lo, Hi].
type Interval struct {
	Lo, Hi *big.Rat
}

// Width returns Hi - Lo.
func (iv Interval) Width() *big.Rat {
	return new(big.Rat).Sub(iv.Hi, iv.Lo)
}

// Mid returns the midpoint (Lo + Hi)/2.
func (iv Interval) Mid() *big.Rat {
	m := new(big.Rat).Add(iv.Lo, iv.Hi)
	return m.Mul(m, big.NewRat(1, 2))
}

// MidFloat returns the midpoint as a float64.
func (iv Interval) MidFloat() float64 {
	f, _ := iv.Mid().Float64()
	return f
}

// SturmSequence holds the canonical Sturm chain of a square-free polynomial
// and answers exact root-counting queries on rational intervals.
type SturmSequence struct {
	chain []RatPoly
}

// NewSturmSequence builds the Sturm chain of p. Multiple roots are handled
// by first passing to the square-free part, so root counts are counts of
// distinct real roots. It returns an error if p is the zero polynomial.
func NewSturmSequence(p RatPoly) (*SturmSequence, error) {
	if p.IsZero() {
		return nil, fmt.Errorf("poly: Sturm sequence of the zero polynomial")
	}
	sf := p.SquareFree()
	chain := []RatPoly{sf}
	if sf.Degree() >= 1 {
		chain = append(chain, sf.Derivative())
		for {
			last := chain[len(chain)-1]
			if last.IsZero() {
				chain = chain[:len(chain)-1]
				break
			}
			if last.Degree() == 0 {
				break
			}
			_, rem, err := chain[len(chain)-2].Divide(last)
			if err != nil {
				return nil, fmt.Errorf("poly: building Sturm chain: %w", err)
			}
			if rem.IsZero() {
				break
			}
			chain = append(chain, rem.Neg())
		}
	}
	return &SturmSequence{chain: chain}, nil
}

// signVariations counts sign changes of the chain evaluated at x,
// ignoring zeros, per Sturm's theorem.
func (s *SturmSequence) signVariations(x *big.Rat) int {
	variations := 0
	prev := 0
	for _, q := range s.chain {
		sign := q.Eval(x).Sign()
		if sign == 0 {
			continue
		}
		if prev != 0 && sign != prev {
			variations++
		}
		prev = sign
	}
	return variations
}

// CountRootsIn returns the number of distinct real roots of the underlying
// polynomial in the half-open interval (lo, hi]. It returns an error if
// lo > hi.
func (s *SturmSequence) CountRootsIn(lo, hi *big.Rat) (int, error) {
	if lo.Cmp(hi) > 0 {
		return 0, fmt.Errorf("poly: inverted interval (%v, %v]", lo, hi)
	}
	return s.signVariations(lo) - s.signVariations(hi), nil
}

// IsolateRoots returns disjoint rational intervals, each containing exactly
// one distinct real root of p in (lo, hi]. Roots lying exactly at rational
// subdivision points are returned as degenerate intervals with Lo == Hi.
func IsolateRoots(p RatPoly, lo, hi *big.Rat) ([]Interval, error) {
	if p.IsZero() {
		return nil, fmt.Errorf("poly: cannot isolate roots of the zero polynomial")
	}
	if lo.Cmp(hi) > 0 {
		return nil, fmt.Errorf("poly: inverted interval [%v, %v]", lo, hi)
	}
	sf := p.SquareFree()
	if sf.Degree() < 1 {
		return nil, nil
	}
	s, err := NewSturmSequence(sf)
	if err != nil {
		return nil, err
	}
	var out []Interval
	var recurse func(a, b *big.Rat) error
	recurse = func(a, b *big.Rat) error {
		count, err := s.CountRootsIn(a, b)
		if err != nil {
			return err
		}
		switch {
		case count == 0:
			return nil
		case count == 1:
			out = append(out, Interval{Lo: new(big.Rat).Set(a), Hi: new(big.Rat).Set(b)})
			return nil
		default:
			mid := new(big.Rat).Add(a, b)
			mid.Mul(mid, big.NewRat(1, 2))
			if sf.Eval(mid).Sign() == 0 {
				// The midpoint is itself a root: report it as a degenerate
				// interval, then shrink the left half so that (a, leftCut]
				// no longer contains the midpoint root. The right half
				// (mid, b] already excludes it.
				out = append(out, Interval{Lo: new(big.Rat).Set(mid), Hi: new(big.Rat).Set(mid)})
				w := new(big.Rat).Sub(mid, a)
				half := big.NewRat(1, 2)
				leftCut := new(big.Rat)
				for {
					w.Mul(w, half)
					leftCut.Sub(mid, w)
					c, err := s.CountRootsIn(leftCut, mid)
					if err != nil {
						return err
					}
					if c == 1 { // only the midpoint root remains to the right of leftCut
						break
					}
				}
				if err := recurse(a, leftCut); err != nil {
					return err
				}
				return recurse(mid, b)
			}
			if err := recurse(a, mid); err != nil {
				return err
			}
			return recurse(mid, b)
		}
	}
	if err := recurse(lo, hi); err != nil {
		return nil, err
	}
	return out, nil
}

// RefineRoot narrows an isolating interval for a root of p down to width at
// most tol by exact rational bisection, and returns the final enclosure.
// The interval must satisfy the Sturm guarantee of containing exactly one
// root in (Lo, Hi] (as produced by IsolateRoots); degenerate intervals are
// returned unchanged. It returns an error if tol is not positive.
func RefineRoot(p RatPoly, iv Interval, tol *big.Rat) (Interval, error) {
	if tol == nil || tol.Sign() <= 0 {
		return Interval{}, fmt.Errorf("poly: non-positive refinement tolerance")
	}
	lo := new(big.Rat).Set(iv.Lo)
	hi := new(big.Rat).Set(iv.Hi)
	if lo.Cmp(hi) == 0 {
		return Interval{Lo: lo, Hi: hi}, nil
	}
	sf := p.SquareFree()
	sHi := sf.Eval(hi).Sign()
	if sHi == 0 {
		// The unique root of (Lo, Hi] sits exactly at the right endpoint.
		return Interval{Lo: new(big.Rat).Set(hi), Hi: hi}, nil
	}
	width := new(big.Rat).Sub(hi, lo)
	half := big.NewRat(1, 2)
	for width.Cmp(tol) > 0 {
		mid := new(big.Rat).Add(lo, hi)
		mid.Mul(mid, half)
		sMid := sf.Eval(mid).Sign()
		if sMid == 0 {
			return Interval{Lo: mid, Hi: new(big.Rat).Set(mid)}, nil
		}
		// The root lies in (lo, hi]; keep the half whose right endpoint
		// sign differs from the left endpoint side. Since the interval
		// contains exactly one root and sf changes sign across it, compare
		// against the sign at hi.
		if sMid == sHi {
			hi.Set(mid)
		} else {
			lo.Set(mid)
		}
		width.Sub(hi, lo)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// Roots returns float64 approximations of all distinct real roots of p in
// [lo, hi], each accurate to within tol (which must be positive), in
// increasing order.
func Roots(p RatPoly, lo, hi *big.Rat, tol *big.Rat) ([]float64, error) {
	ivs, err := IsolateRoots(p, lo, hi)
	if err != nil {
		return nil, err
	}
	// Sturm counts roots in (lo, hi]; pick up a root exactly at lo.
	var out []float64
	if p.Eval(lo).Sign() == 0 {
		f, _ := lo.Float64()
		out = append(out, f)
	}
	for _, iv := range ivs {
		refined, err := RefineRoot(p, iv, tol)
		if err != nil {
			return nil, err
		}
		out = append(out, refined.MidFloat())
	}
	sortFloats(out)
	return out, nil
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
