package poly

import (
	"math"
	"math/big"
	"testing"
)

// paperN3Piecewise builds the Section 5.2.1 winning probability for
// n = 3, δ = 1: 1/6 + (3/2)β² - (1/2)β³ on [0, 1/2] and
// -11/6 + 9β - (21/2)β² + (7/2)β³ on (1/2, 1].
func paperN3Piecewise(t *testing.T) *Piecewise {
	t.Helper()
	low, err := RatPolyFromFracs([]int64{1, 0, 3, -1}, []int64{6, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RatPolyFromFracs([]int64{-11, 9, -21, 7}, []int64{6, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := NewPiecewise(
		[]*big.Rat{rat(0, 1), rat(1, 2), rat(1, 1)},
		[]RatPoly{low, high},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

func TestNewPiecewiseValidation(t *testing.T) {
	p := RatPolyFromInt64(1)
	if _, err := NewPiecewise([]*big.Rat{rat(0, 1), rat(1, 1)}, nil); err == nil {
		t.Error("piece count mismatch: expected error")
	}
	if _, err := NewPiecewise([]*big.Rat{rat(0, 1)}, nil); err == nil {
		t.Error("no pieces: expected error")
	}
	if _, err := NewPiecewise([]*big.Rat{rat(1, 1), rat(0, 1)}, []RatPoly{p}); err == nil {
		t.Error("decreasing breakpoints: expected error")
	}
	if _, err := NewPiecewise([]*big.Rat{rat(0, 1), rat(0, 1)}, []RatPoly{p}); err == nil {
		t.Error("repeated breakpoints: expected error")
	}
	if _, err := NewPiecewise([]*big.Rat{nil, rat(1, 1)}, []RatPoly{p}); err == nil {
		t.Error("nil breakpoint: expected error")
	}
}

func TestPiecewiseAccessors(t *testing.T) {
	pw := paperN3Piecewise(t)
	if pw.NumPieces() != 2 {
		t.Errorf("NumPieces = %d, want 2", pw.NumPieces())
	}
	lo, hi := pw.Domain()
	if lo.Sign() != 0 || hi.Cmp(rat(1, 1)) != 0 {
		t.Errorf("domain = [%v, %v], want [0, 1]", lo, hi)
	}
	bs := pw.Breakpoints()
	if len(bs) != 3 || bs[1].Cmp(rat(1, 2)) != 0 {
		t.Errorf("breakpoints = %v", bs)
	}
	piece, iv, err := pw.Piece(1)
	if err != nil {
		t.Fatal(err)
	}
	if piece.Degree() != 3 || iv.Lo.Cmp(rat(1, 2)) != 0 || iv.Hi.Cmp(rat(1, 1)) != 0 {
		t.Errorf("Piece(1) = %v on [%v, %v]", piece, iv.Lo, iv.Hi)
	}
	if _, _, err := pw.Piece(5); err == nil {
		t.Error("out-of-range piece: expected error")
	}
	if _, _, err := pw.Piece(-1); err == nil {
		t.Error("negative piece: expected error")
	}
}

func TestPiecewiseEval(t *testing.T) {
	pw := paperN3Piecewise(t)
	// At β = 0 the probability is 1/6 (both bins receive everything by
	// chance only when all three inputs go to bin 1... the polynomial value).
	v, err := pw.Eval(rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(rat(1, 6)) != 0 {
		t.Errorf("P(0) = %v, want 1/6", v)
	}
	// At β = 1 the value is -11/6 + 9 - 21/2 + 7/2 = 1/6.
	v, err = pw.Eval(rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(rat(1, 6)) != 0 {
		t.Errorf("P(1) = %v, want 1/6", v)
	}
	if _, err := pw.Eval(rat(2, 1)); err == nil {
		t.Error("out-of-domain Eval: expected error")
	}
	if _, err := pw.Eval(rat(-1, 10)); err == nil {
		t.Error("below-domain Eval: expected error")
	}
}

func TestPiecewiseEvalFloatClamping(t *testing.T) {
	pw := paperN3Piecewise(t)
	if got := pw.EvalFloat(-0.5); math.Abs(got-1.0/6) > 1e-15 {
		t.Errorf("EvalFloat(-0.5) = %v, want clamp to P(0) = 1/6", got)
	}
	if got := pw.EvalFloat(2); math.Abs(got-1.0/6) > 1e-15 {
		t.Errorf("EvalFloat(2) = %v, want clamp to P(1) = 1/6", got)
	}
	mid := pw.EvalFloat(0.25)
	want := 1.0/6 + 1.5*0.0625 - 0.5*0.015625
	if math.Abs(mid-want) > 1e-12 {
		t.Errorf("EvalFloat(0.25) = %v, want %v", mid, want)
	}
}

func TestPiecewiseContinuity(t *testing.T) {
	pw := paperN3Piecewise(t)
	if !pw.IsContinuous() {
		t.Error("paper's n=3 piecewise polynomial should be continuous at 1/2")
	}
	// Deliberately discontinuous function.
	bad, err := NewPiecewise(
		[]*big.Rat{rat(0, 1), rat(1, 2), rat(1, 1)},
		[]RatPoly{RatPolyFromInt64(0), RatPolyFromInt64(1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if bad.IsContinuous() {
		t.Error("discontinuous function reported continuous")
	}
}

func TestPiecewiseDerivative(t *testing.T) {
	pw := paperN3Piecewise(t)
	d := pw.Derivative()
	// Derivative of the upper piece at β = 0.8: 9 - 21(0.8) + (21/2)(0.64).
	got, err := d.Eval(rat(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).SetFloat64(9 - 21*0.8 + 10.5*0.64)
	gf, _ := got.Float64()
	wf, _ := want.Float64()
	if math.Abs(gf-wf) > 1e-12 {
		t.Errorf("P'(0.8) = %v, want %v", gf, wf)
	}
}

func TestPiecewiseGlobalMaxPaperN3(t *testing.T) {
	// The headline result of Section 5.2.1: the optimum threshold is
	// β* = 1 - sqrt(1/7) ≈ 0.62203 with P* ≈ 0.54498.
	pw := paperN3Piecewise(t)
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	ext, err := pw.GlobalMax(tol)
	if err != nil {
		t.Fatal(err)
	}
	wantBeta := 1 - math.Sqrt(1.0/7.0)
	if math.Abs(ext.X.MidFloat()-wantBeta) > 1e-12 {
		t.Errorf("argmax = %.15g, want %.15g", ext.X.MidFloat(), wantBeta)
	}
	valF, _ := ext.Value.Float64()
	wantP := -11.0/6 + 9*wantBeta - 10.5*wantBeta*wantBeta + 3.5*wantBeta*wantBeta*wantBeta
	if math.Abs(valF-wantP) > 1e-9 {
		t.Errorf("max value = %.15g, want %.15g", valF, wantP)
	}
	if math.Abs(valF-0.545) > 1e-3 {
		t.Errorf("max value = %.4f, want ≈ 0.545 (paper)", valF)
	}
	if ext.PieceIndex != 1 {
		t.Errorf("max on piece %d, want 1", ext.PieceIndex)
	}
	if ext.Critical == nil {
		t.Error("interior maximum should carry its critical polynomial")
	}
}

func TestPiecewiseGlobalMaxEndpoint(t *testing.T) {
	// Strictly increasing function: max at the right endpoint.
	inc, err := NewPiecewise(
		[]*big.Rat{rat(0, 1), rat(1, 1)},
		[]RatPoly{RatPolyFromInt64(0, 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := inc.GlobalMax(rat(1, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if ext.X.MidFloat() != 1 || ext.Value.Cmp(rat(1, 1)) != 0 {
		t.Errorf("max of x on [0,1] = %v at %v, want 1 at 1", ext.Value, ext.X.MidFloat())
	}
	if ext.Critical != nil {
		t.Error("endpoint maximum should have nil Critical")
	}
}

func TestPiecewiseGlobalMaxToleranceValidation(t *testing.T) {
	pw := paperN3Piecewise(t)
	if _, err := pw.GlobalMax(nil); err == nil {
		t.Error("nil tolerance: expected error")
	}
	if _, err := pw.GlobalMax(rat(-1, 2)); err == nil {
		t.Error("negative tolerance: expected error")
	}
}

func TestPiecewiseString(t *testing.T) {
	pw := paperN3Piecewise(t)
	s := pw.String()
	if s == "" {
		t.Error("String() should be non-empty")
	}
}
