package optimize

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
)

// TestGoldenSectionObserved checks the recorded metrics against the
// returned result and the event trace's bracket contraction.
func TestGoldenSectionObserved(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	f := func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }
	res, err := GoldenSectionMaxObserved(o, f, 0, 1, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-0.3) > 1e-6 {
		t.Errorf("X = %v, want ≈ 0.3", res.X)
	}
	if res.Iterations <= 0 {
		t.Error("no iterations recorded in result")
	}
	if got := o.Counter("opt.golden.evals").Value(); got != int64(res.Evals) {
		t.Errorf("opt.golden.evals = %d, want %d", got, res.Evals)
	}
	if got := o.Counter("opt.golden.iterations").Value(); got != int64(res.Iterations) {
		t.Errorf("opt.golden.iterations = %d, want %d", got, res.Iterations)
	}
	if w := o.Gauge("opt.golden.bracket_width").Value(); !(w > 0 && w <= 1e-8) {
		t.Errorf("final bracket width %v not within tolerance", w)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(events)
	if len(sum.Checkpoints) != 1 || sum.Checkpoints[0].Name != "opt.golden_section" {
		t.Fatalf("checkpoint streams: %+v", sum.Checkpoints)
	}
	pts := sum.Checkpoints[0].Points
	if len(pts) != res.Iterations {
		t.Errorf("trace has %d iterations, result says %d", len(pts), res.Iterations)
	}
	prev := math.Inf(1)
	for i, p := range pts {
		w := p.Attrs["width"]
		if w >= prev {
			t.Errorf("iteration %d: bracket width %v did not shrink from %v", i, w, prev)
		}
		prev = w
	}
}

// TestBrentRootObserved checks eval/iteration accounting on the root
// finder.
func TestBrentRootObserved(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	root, err := BrentRootObserved(o, func(x float64) float64 { return x*x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Cbrt(2)) > 1e-9 {
		t.Errorf("root = %v, want cbrt(2)", root)
	}
	if o.Counter("opt.brent.iterations").Value() <= 0 {
		t.Error("no Brent iterations recorded")
	}
	if o.Counter("opt.brent.evals").Value() < 3 {
		t.Error("Brent evals not accounted")
	}
}

// TestObservedVariantsMatchPlain pins that the nil-observer fast path and
// the plain entry points agree exactly.
func TestObservedVariantsMatchPlain(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(3*x) - 0.2*x }
	plain, err := GridThenGoldenMax(f, 0, 2, 41, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.NewRegistry(), nil)
	observed, err := GridThenGoldenMaxObserved(o, f, 0, 2, 41, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Errorf("observability changed the optimization: %+v vs %+v", plain, observed)
	}
	if o.Counter("opt.grid.evals").Value() != 41 {
		t.Errorf("opt.grid.evals = %d, want 41", o.Counter("opt.grid.evals").Value())
	}
}
