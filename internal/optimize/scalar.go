// Package optimize provides the numeric optimization and root-finding
// routines used to cross-check the paper's symbolic optimality results:
// golden-section and Brent scalar maximization (for threshold sweeps),
// bisection and Brent root finding (for optimality conditions), and
// derivative-free vector maximization (coordinate ascent and Nelder-Mead)
// over probability/threshold vectors.
//
// Every optimum the reproduction reports is computed twice — once exactly
// through internal/poly's Sturm machinery and once numerically through this
// package — and the two are required to agree in tests.
package optimize

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// ScalarResult is the outcome of a one-dimensional maximization.
type ScalarResult struct {
	// X is the maximizing argument.
	X float64
	// Value is the function value at X.
	Value float64
	// Evals counts function evaluations performed.
	Evals int
	// Iterations counts bracket-shrinking iterations performed.
	Iterations int
}

// GoldenSectionMax maximizes f on [lo, hi] to within tol using
// golden-section search. f must be unimodal on the interval for the result
// to be the global maximum; on multimodal functions it returns some local
// maximum. It returns an error for invalid intervals, tolerances, or a nil
// function.
func GoldenSectionMax(f func(float64) float64, lo, hi, tol float64) (ScalarResult, error) {
	return GoldenSectionMaxObserved(nil, f, lo, hi, tol)
}

// GoldenSectionMaxObserved is GoldenSectionMax with observability: it
// counts function evaluations and iterations (opt.golden.evals,
// opt.golden.iterations), records the final bracket width
// (opt.golden.bracket_width), and emits one opt.golden_section checkpoint
// event per iteration with the live bracket. A nil observer makes it
// identical to GoldenSectionMax.
func GoldenSectionMaxObserved(o *obs.Observer, f func(float64) float64, lo, hi, tol float64) (ScalarResult, error) {
	if f == nil {
		return ScalarResult{}, fmt.Errorf("optimize: nil objective")
	}
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		return ScalarResult{}, fmt.Errorf("optimize: invalid interval [%v, %v]", lo, hi)
	}
	if !(tol > 0) {
		return ScalarResult{}, fmt.Errorf("optimize: non-positive tolerance %v", tol)
	}
	sp := o.StartSpan("opt.golden_section")
	defer sp.End()
	evals := 0
	eval := func(x float64) float64 {
		evals++
		return f(x)
	}
	iters := 0
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := eval(c), eval(d)
	for b-a > tol {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = eval(d)
		}
		iters++
		if o.Enabled() {
			o.Emit(obs.Event{
				Type: obs.EventCheckpoint,
				Name: "opt.golden_section",
				Attrs: map[string]float64{
					"iter":  float64(iters),
					"lo":    a,
					"hi":    b,
					"width": b - a,
					"best":  math.Max(fc, fd),
				},
			})
		}
	}
	x := (a + b) / 2
	v := eval(x)
	// Keep the best of the bracketing probes in case of flat regions.
	if fc > v {
		x, v = c, fc
	}
	if fd > v {
		x, v = d, fd
	}
	o.Counter("opt.golden.evals").Add(int64(evals))
	o.Counter("opt.golden.iterations").Add(int64(iters))
	o.Gauge("opt.golden.bracket_width").Set(b - a)
	return ScalarResult{X: x, Value: v, Evals: evals, Iterations: iters}, nil
}

// GridThenGoldenMax scans [lo, hi] on a grid of the given resolution to
// bracket the global maximum of a possibly multimodal function, then
// refines the best bracket with golden-section search. It returns an error
// for invalid arguments.
func GridThenGoldenMax(f func(float64) float64, lo, hi float64, gridPoints int, tol float64) (ScalarResult, error) {
	return GridThenGoldenMaxObserved(nil, f, lo, hi, gridPoints, tol)
}

// GridThenGoldenMaxObserved is GridThenGoldenMax with observability: the
// grid scan is counted under opt.grid.evals and wrapped, together with the
// golden-section refinement, in an opt.grid_then_golden span. A nil
// observer makes it identical to GridThenGoldenMax.
func GridThenGoldenMaxObserved(o *obs.Observer, f func(float64) float64, lo, hi float64, gridPoints int, tol float64) (ScalarResult, error) {
	if f == nil {
		return ScalarResult{}, fmt.Errorf("optimize: nil objective")
	}
	if !(lo < hi) {
		return ScalarResult{}, fmt.Errorf("optimize: invalid interval [%v, %v]", lo, hi)
	}
	if gridPoints < 3 {
		return ScalarResult{}, fmt.Errorf("optimize: grid needs at least 3 points, got %d", gridPoints)
	}
	if !(tol > 0) {
		return ScalarResult{}, fmt.Errorf("optimize: non-positive tolerance %v", tol)
	}
	sp := o.StartSpan("opt.grid_then_golden")
	defer sp.End()
	evals := 0
	bestI, bestV := 0, math.Inf(-1)
	h := (hi - lo) / float64(gridPoints-1)
	for i := 0; i < gridPoints; i++ {
		v := f(lo + float64(i)*h)
		evals++
		if v > bestV {
			bestI, bestV = i, v
		}
	}
	o.Counter("opt.grid.evals").Add(int64(evals))
	bLo := lo + float64(max(bestI-1, 0))*h
	bHi := lo + float64(min(bestI+1, gridPoints-1))*h
	res, err := GoldenSectionMaxObserved(o, f, bLo, bHi, tol)
	if err != nil {
		return ScalarResult{}, err
	}
	res.Evals += evals
	if bestV > res.Value {
		res.X = lo + float64(bestI)*h
		res.Value = bestV
	}
	return res, nil
}

// Bisect finds a root of f in [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite (or zero) signs. The returned x satisfies an interval width
// of at most tol. It returns an error on invalid input or same-sign
// endpoints.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if f == nil {
		return 0, fmt.Errorf("optimize: nil function")
	}
	if !(lo < hi) {
		return 0, fmt.Errorf("optimize: invalid interval [%v, %v]", lo, hi)
	}
	if !(tol > 0) {
		return 0, fmt.Errorf("optimize: non-positive tolerance %v", tol)
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("optimize: f has the same sign at %v and %v", lo, hi)
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// BrentRoot finds a root of f in [lo, hi] with Brent's method (inverse
// quadratic interpolation guarded by bisection). f(lo) and f(hi) must
// bracket a root. It returns an error on invalid input, same-sign
// endpoints, or failure to converge in 200 iterations.
func BrentRoot(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	return BrentRootObserved(nil, f, lo, hi, tol)
}

// BrentRootObserved is BrentRoot with observability: it counts function
// evaluations and iterations (opt.brent.evals, opt.brent.iterations),
// records the final bracket width (opt.brent.bracket_width), and emits one
// opt.brent_root checkpoint event per iteration. A nil observer makes it
// identical to BrentRoot.
func BrentRootObserved(o *obs.Observer, f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if f == nil {
		return 0, fmt.Errorf("optimize: nil function")
	}
	if !(lo < hi) {
		return 0, fmt.Errorf("optimize: invalid interval [%v, %v]", lo, hi)
	}
	if !(tol > 0) {
		return 0, fmt.Errorf("optimize: non-positive tolerance %v", tol)
	}
	sp := o.StartSpan("opt.brent_root")
	defer sp.End()
	evals := 0
	iters := 0
	finish := func(root float64, err error) (float64, error) {
		o.Counter("opt.brent.evals").Add(int64(evals))
		o.Counter("opt.brent.iterations").Add(int64(iters))
		return root, err
	}
	eval := func(x float64) float64 {
		evals++
		return f(x)
	}
	a, b := lo, hi
	fa, fb := eval(a), eval(b)
	if fa == 0 {
		return finish(a, nil)
	}
	if fb == 0 {
		return finish(b, nil)
	}
	if (fa > 0) == (fb > 0) {
		return finish(0, fmt.Errorf("optimize: f has the same sign at %v and %v", lo, hi))
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		iters++
		if o.Enabled() {
			o.Emit(obs.Event{
				Type: obs.EventCheckpoint,
				Name: "opt.brent_root",
				Attrs: map[string]float64{
					"iter":  float64(iters),
					"width": math.Abs(b - a),
					"fb":    fb,
				},
			})
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
		if fb == 0 || math.Abs(b-a) < tol {
			o.Gauge("opt.brent.bracket_width").Set(math.Abs(b - a))
			return finish(b, nil)
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		cond := (s < (3*a+b)/4 && s < b) || (s > (3*a+b)/4 && s > b)
		if !((s > (3*a+b)/4 && s < b) || (s < (3*a+b)/4 && s > b)) {
			cond = true
		}
		switch {
		case cond,
			mflag && math.Abs(s-b) >= math.Abs(b-c)/2,
			!mflag && math.Abs(s-b) >= math.Abs(c-d)/2:
			s = (a + b) / 2
			mflag = true
		default:
			mflag = false
		}
		fs := eval(s)
		d, c, fc = c, b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
	}
	return finish(0, fmt.Errorf("optimize: Brent root did not converge on [%v, %v]", lo, hi))
}
