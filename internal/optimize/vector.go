package optimize

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// VectorResult is the outcome of a multi-dimensional maximization.
type VectorResult struct {
	// X is the maximizing point.
	X []float64
	// Value is the function value at X.
	Value float64
	// Iterations counts outer iterations performed.
	Iterations int
}

// CoordinateAscentBox maximizes f over the box Π [lo_i, hi_i] by cyclic
// coordinate ascent: each pass line-maximizes every coordinate with
// golden-section search. It converges to a coordinate-wise maximum, which
// for the paper's smooth winning-probability surfaces coincides with the
// stationary points the optimality conditions describe. It returns an
// error on invalid bounds, a nil objective, or an out-of-box start.
func CoordinateAscentBox(f func([]float64) float64, start, lo, hi []float64, passes int, tol float64) (VectorResult, error) {
	return CoordinateAscentBoxObserved(nil, f, start, lo, hi, passes, tol)
}

// CoordinateAscentBoxObserved is CoordinateAscentBox with observability: the
// whole ascent runs under an opt.coordinate_ascent span, passes are counted
// in opt.coord.passes, each line search runs through
// GoldenSectionMaxObserved (so its opt.golden.* counters accumulate), and one
// opt.coordinate_ascent checkpoint event per pass records the live best
// value. A nil observer makes it identical to CoordinateAscentBox.
func CoordinateAscentBoxObserved(o *obs.Observer, f func([]float64) float64, start, lo, hi []float64, passes int, tol float64) (VectorResult, error) {
	n := len(start)
	if f == nil {
		return VectorResult{}, fmt.Errorf("optimize: nil objective")
	}
	if n == 0 || len(lo) != n || len(hi) != n {
		return VectorResult{}, fmt.Errorf("optimize: dimension mismatch (start %d, lo %d, hi %d)", n, len(lo), len(hi))
	}
	if passes <= 0 {
		return VectorResult{}, fmt.Errorf("optimize: pass count %d must be positive", passes)
	}
	if !(tol > 0) {
		return VectorResult{}, fmt.Errorf("optimize: non-positive tolerance %v", tol)
	}
	x := make([]float64, n)
	copy(x, start)
	for i := 0; i < n; i++ {
		if !(lo[i] < hi[i]) {
			return VectorResult{}, fmt.Errorf("optimize: invalid bounds [%v, %v] at coordinate %d", lo[i], hi[i], i)
		}
		if x[i] < lo[i] || x[i] > hi[i] {
			return VectorResult{}, fmt.Errorf("optimize: start[%d] = %v outside [%v, %v]", i, x[i], lo[i], hi[i])
		}
	}
	sp := o.StartSpan("opt.coordinate_ascent")
	defer sp.End()
	value := f(x)
	iterations := 0
	for pass := 0; pass < passes; pass++ {
		iterations++
		improved := false
		for i := 0; i < n; i++ {
			xi := x[i]
			line := func(v float64) float64 {
				x[i] = v
				out := f(x)
				x[i] = xi
				return out
			}
			res, err := GoldenSectionMaxObserved(o, line, lo[i], hi[i], tol)
			if err != nil {
				return VectorResult{}, fmt.Errorf("optimize: line search on coordinate %d: %w", i, err)
			}
			if res.Value > value+1e-15 {
				x[i] = res.X
				value = res.Value
				improved = true
			}
		}
		if o.Enabled() {
			o.Emit(obs.Event{
				Type: obs.EventCheckpoint,
				Name: "opt.coordinate_ascent",
				Attrs: map[string]float64{
					"pass": float64(iterations),
					"best": value,
				},
			})
		}
		if !improved {
			break
		}
	}
	o.Counter("opt.coord.passes").Add(int64(iterations))
	return VectorResult{X: x, Value: value, Iterations: iterations}, nil
}

// NelderMeadMax maximizes f over the box [lo, hi] starting from a simplex
// around start with the given initial step, for at most maxIter iterations
// or until the simplex value spread falls below tol. Box constraints are
// enforced with a smooth exterior penalty (clamping would flatten simplex
// vertices onto a boundary face and degenerate the search), and the search
// automatically restarts once from its own optimum with a smaller step to
// escape collapsed simplices. It returns an error on invalid arguments.
func NelderMeadMax(f func([]float64) float64, start, lo, hi []float64, step float64, maxIter int, tol float64) (VectorResult, error) {
	return NelderMeadMaxObserved(nil, f, start, lo, hi, step, maxIter, tol)
}

// NelderMeadMaxObserved is NelderMeadMax with observability: the search
// (both descents) runs under an opt.nelder_mead span and the total simplex
// iteration count lands in opt.nm.iterations. A nil observer makes it
// identical to NelderMeadMax.
func NelderMeadMaxObserved(o *obs.Observer, f func([]float64) float64, start, lo, hi []float64, step float64, maxIter int, tol float64) (VectorResult, error) {
	n := len(start)
	if f == nil {
		return VectorResult{}, fmt.Errorf("optimize: nil objective")
	}
	if n == 0 || len(lo) != n || len(hi) != n {
		return VectorResult{}, fmt.Errorf("optimize: dimension mismatch")
	}
	if !(step > 0) || !(tol > 0) || maxIter <= 0 {
		return VectorResult{}, fmt.Errorf("optimize: invalid step %v, tol %v, or maxIter %d", step, tol, maxIter)
	}
	sp := o.StartSpan("opt.nelder_mead")
	defer sp.End()
	first, err := nelderMeadOnce(f, start, lo, hi, step, maxIter, tol)
	if err != nil {
		return VectorResult{}, err
	}
	second, err := nelderMeadOnce(f, first.X, lo, hi, step/4, maxIter, tol)
	if err != nil {
		return VectorResult{}, err
	}
	second.Iterations += first.Iterations
	o.Counter("opt.nm.iterations").Add(int64(second.Iterations))
	if first.Value > second.Value {
		first.Iterations = second.Iterations
		return first, nil
	}
	return second, nil
}

func nelderMeadOnce(f func([]float64) float64, start, lo, hi []float64, step float64, maxIter int, tol float64) (VectorResult, error) {
	n := len(start)
	// Minimize the negated objective with the standard simplex moves.
	// Out-of-box points receive a steep exterior penalty proportional to
	// their violation, so the simplex is pushed back inside without
	// degenerating.
	neg := func(x []float64) float64 {
		var violation float64
		inside := make([]float64, n)
		for i := range x {
			v := x[i]
			if v < lo[i] {
				violation += lo[i] - v
				v = lo[i]
			}
			if v > hi[i] {
				violation += v - hi[i]
				v = hi[i]
			}
			inside[i] = v
		}
		val := -f(inside)
		if violation > 0 {
			val += 1e6 * violation * (1 + math.Abs(val))
		}
		return val
	}

	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		pts[i] = make([]float64, n)
		copy(pts[i], start)
		if i > 0 {
			pts[i][i-1] += step
		}
		vals[i] = neg(pts[i])
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations++
		// Order: best first.
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		if math.Abs(vals[n]-vals[0]) < tol {
			break
		}
		// Centroid of all but the worst point.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j] / float64(n)
			}
		}
		reflect := make([]float64, n)
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + alpha*(centroid[j]-pts[n][j])
		}
		fr := neg(reflect)
		switch {
		case fr < vals[0]:
			expand := make([]float64, n)
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			fe := neg(expand)
			if fe < fr {
				pts[n], vals[n] = expand, fe
			} else {
				pts[n], vals[n] = reflect, fr
			}
		case fr < vals[n-1]:
			pts[n], vals[n] = reflect, fr
		default:
			contract := make([]float64, n)
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + rho*(pts[n][j]-centroid[j])
			}
			fc := neg(contract)
			if fc < vals[n] {
				pts[n], vals[n] = contract, fc
			} else {
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					vals[i] = neg(pts[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	out := make([]float64, n)
	copy(out, pts[best])
	// Project the winner back into the box (penalized points can sit just
	// outside) and report the true objective value there.
	for i := range out {
		if out[i] < lo[i] {
			out[i] = lo[i]
		}
		if out[i] > hi[i] {
			out[i] = hi[i]
		}
	}
	return VectorResult{X: out, Value: f(out), Iterations: iterations}, nil
}
