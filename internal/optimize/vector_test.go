package optimize

import (
	"math"
	"testing"
)

func quadObjective(center []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - center[i]
			s -= d * d
		}
		return s
	}
}

func TestCoordinateAscentBoxQuadratic(t *testing.T) {
	center := []float64{0.3, 0.7, 0.5}
	f := quadObjective(center)
	res, err := CoordinateAscentBox(f,
		[]float64{0.5, 0.5, 0.5},
		[]float64{0, 0, 0},
		[]float64{1, 1, 1},
		50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-6 {
			t.Errorf("coordinate %d = %v, want %v", i, res.X[i], center[i])
		}
	}
	if math.Abs(res.Value) > 1e-10 {
		t.Errorf("max value = %v, want 0", res.Value)
	}
	if res.Iterations <= 0 {
		t.Error("Iterations should be positive")
	}
}

func TestCoordinateAscentBoxBoundaryOptimum(t *testing.T) {
	// Optimum outside the box: ascent should pin to the boundary.
	f := quadObjective([]float64{2, 2})
	res, err := CoordinateAscentBox(f,
		[]float64{0.5, 0.5}, []float64{0, 0}, []float64{1, 1}, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-1) > 1e-6 {
			t.Errorf("coordinate %d = %v, want 1 (boundary)", i, res.X[i])
		}
	}
}

func TestCoordinateAscentBoxValidation(t *testing.T) {
	f := quadObjective([]float64{0.5})
	ok := []float64{0.5}
	lo := []float64{0}
	hi := []float64{1}
	if _, err := CoordinateAscentBox(nil, ok, lo, hi, 5, 1e-6); err == nil {
		t.Error("nil objective: expected error")
	}
	if _, err := CoordinateAscentBox(f, nil, lo, hi, 5, 1e-6); err == nil {
		t.Error("empty start: expected error")
	}
	if _, err := CoordinateAscentBox(f, ok, []float64{0, 0}, hi, 5, 1e-6); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	if _, err := CoordinateAscentBox(f, ok, lo, hi, 0, 1e-6); err == nil {
		t.Error("zero passes: expected error")
	}
	if _, err := CoordinateAscentBox(f, ok, lo, hi, 5, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
	if _, err := CoordinateAscentBox(f, []float64{2}, lo, hi, 5, 1e-6); err == nil {
		t.Error("start outside box: expected error")
	}
	if _, err := CoordinateAscentBox(f, ok, []float64{1}, []float64{0}, 5, 1e-6); err == nil {
		t.Error("inverted bounds: expected error")
	}
}

func TestNelderMeadMaxQuadratic(t *testing.T) {
	center := []float64{0.25, 0.6}
	f := quadObjective(center)
	res, err := NelderMeadMax(f,
		[]float64{0.9, 0.1},
		[]float64{0, 0}, []float64{1, 1},
		0.2, 2000, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-5 {
			t.Errorf("coordinate %d = %v, want %v", i, res.X[i], center[i])
		}
	}
}

func TestNelderMeadMaxRosenbrockStyle(t *testing.T) {
	// Maximize the negated Rosenbrock function (optimum at (1, 1)),
	// restricted to the box [0, 2]².
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return -(a*a + 100*b*b)
	}
	res, err := NelderMeadMax(f, []float64{0.2, 0.2}, []float64{0, 0}, []float64{2, 2}, 0.3, 20000, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("argmax = %v, want (1, 1)", res.X)
	}
}

func TestNelderMeadMaxAgreesWithCoordinateAscent(t *testing.T) {
	// Smooth concave objective: both optimizers must agree.
	f := func(x []float64) float64 {
		return -(x[0]-0.4)*(x[0]-0.4) - 2*(x[1]-0.55)*(x[1]-0.55) - x[0]*x[1]*0.1
	}
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	ca, err := CoordinateAscentBox(f, []float64{0.5, 0.5}, lo, hi, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NelderMeadMax(f, []float64{0.9, 0.9}, lo, hi, 0.2, 5000, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ca.Value-nm.Value) > 1e-6 {
		t.Errorf("coordinate ascent %v vs Nelder-Mead %v", ca.Value, nm.Value)
	}
	for i := range ca.X {
		if math.Abs(ca.X[i]-nm.X[i]) > 1e-3 {
			t.Errorf("coordinate %d: %v vs %v", i, ca.X[i], nm.X[i])
		}
	}
}

func TestNelderMeadMaxValidation(t *testing.T) {
	f := quadObjective([]float64{0.5})
	ok := []float64{0.5}
	lo := []float64{0}
	hi := []float64{1}
	if _, err := NelderMeadMax(nil, ok, lo, hi, 0.1, 100, 1e-9); err == nil {
		t.Error("nil objective: expected error")
	}
	if _, err := NelderMeadMax(f, nil, lo, hi, 0.1, 100, 1e-9); err == nil {
		t.Error("empty start: expected error")
	}
	if _, err := NelderMeadMax(f, ok, []float64{0, 1}, hi, 0.1, 100, 1e-9); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	if _, err := NelderMeadMax(f, ok, lo, hi, 0, 100, 1e-9); err == nil {
		t.Error("zero step: expected error")
	}
	if _, err := NelderMeadMax(f, ok, lo, hi, 0.1, 0, 1e-9); err == nil {
		t.Error("zero maxIter: expected error")
	}
	if _, err := NelderMeadMax(f, ok, lo, hi, 0.1, 100, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
}
