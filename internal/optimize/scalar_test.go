package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionMaxQuadratic(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }
	res, err := GoldenSectionMax(f, 0, 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-0.3) > 1e-8 {
		t.Errorf("argmax = %v, want 0.3", res.X)
	}
	if math.Abs(res.Value) > 1e-15 {
		t.Errorf("max value = %v, want 0", res.Value)
	}
	if res.Evals <= 0 {
		t.Error("Evals should be positive")
	}
}

func TestGoldenSectionMaxPaperCubic(t *testing.T) {
	// The paper's n=3 upper-piece probability: max at 1 - sqrt(1/7).
	f := func(b float64) float64 {
		return -11.0/6 + 9*b - 10.5*b*b + 3.5*b*b*b
	}
	res, err := GoldenSectionMax(f, 0.5, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Sqrt(1.0/7)
	if math.Abs(res.X-want) > 1e-6 {
		t.Errorf("argmax = %v, want %v", res.X, want)
	}
	if math.Abs(res.Value-0.545) > 1e-3 {
		t.Errorf("max = %v, want ≈ 0.545", res.Value)
	}
}

func TestGoldenSectionMaxMonotone(t *testing.T) {
	res, err := GoldenSectionMax(func(x float64) float64 { return x }, 0, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-2) > 1e-8 {
		t.Errorf("argmax of increasing function = %v, want 2", res.X)
	}
}

func TestGoldenSectionMaxValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := GoldenSectionMax(nil, 0, 1, 1e-6); err == nil {
		t.Error("nil objective: expected error")
	}
	if _, err := GoldenSectionMax(f, 1, 0, 1e-6); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := GoldenSectionMax(f, 0, 1, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
	if _, err := GoldenSectionMax(f, math.NaN(), 1, 1e-6); err == nil {
		t.Error("NaN bound: expected error")
	}
}

func TestGridThenGoldenMaxMultimodal(t *testing.T) {
	// Two peaks; the global one at x ≈ 0.8 is narrower but higher.
	f := func(x float64) float64 {
		return math.Exp(-100*(x-0.2)*(x-0.2)) + 1.5*math.Exp(-400*(x-0.8)*(x-0.8))
	}
	res, err := GridThenGoldenMax(f, 0, 1, 101, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-0.8) > 1e-6 {
		t.Errorf("argmax = %v, want 0.8 (global peak)", res.X)
	}
	if math.Abs(res.Value-1.5) > 1e-9 {
		t.Errorf("max = %v, want 1.5", res.Value)
	}
}

func TestGridThenGoldenMaxValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := GridThenGoldenMax(nil, 0, 1, 10, 1e-6); err == nil {
		t.Error("nil objective: expected error")
	}
	if _, err := GridThenGoldenMax(f, 1, 0, 10, 1e-6); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := GridThenGoldenMax(f, 0, 1, 2, 1e-6); err == nil {
		t.Error("tiny grid: expected error")
	}
	if _, err := GridThenGoldenMax(f, 0, 1, 10, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
}

func TestGridThenGoldenFindsGlobalOnRandomBimodalProperty(t *testing.T) {
	f := func(p1Raw, p2Raw uint8) bool {
		p1 := 0.1 + 0.3*float64(p1Raw)/255
		p2 := 0.6 + 0.3*float64(p2Raw)/255
		obj := func(x float64) float64 {
			return math.Exp(-200*(x-p1)*(x-p1)) + 2*math.Exp(-200*(x-p2)*(x-p2))
		}
		res, err := GridThenGoldenMax(obj, 0, 1, 201, 1e-9)
		if err != nil {
			return false
		}
		return math.Abs(res.X-p2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
	// Exact hits at endpoints.
	r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || r != 0 {
		t.Errorf("root at lo: %v, %v", r, err)
	}
	r, err = Bisect(func(x float64) float64 { return x - 1 }, 0, 1, 1e-12)
	if err != nil || r != 1 {
		t.Errorf("root at hi: %v, %v", r, err)
	}
}

func TestBisectValidation(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, 0, 1, 1e-6); err == nil {
		t.Error("same-sign endpoints: expected error")
	}
	if _, err := Bisect(nil, 0, 1, 1e-6); err == nil {
		t.Error("nil function: expected error")
	}
	if _, err := Bisect(f, 1, 0, 1e-6); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := Bisect(f, 0, 1, -1); err == nil {
		t.Error("negative tolerance: expected error")
	}
}

func TestBrentRoot(t *testing.T) {
	// Paper's n=3 optimality condition: β² - 2β + 6/7 = 0 on (0, 1).
	f := func(b float64) float64 { return b*b - 2*b + 6.0/7 }
	root, err := BrentRoot(f, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Sqrt(1.0/7)
	if math.Abs(root-want) > 1e-10 {
		t.Errorf("root = %.15g, want %.15g", root, want)
	}
	// A hard case for secant-only methods.
	g := func(x float64) float64 { return math.Pow(x, 9) - 0.5 }
	root, err = BrentRoot(g, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Pow(0.5, 1.0/9)) > 1e-9 {
		t.Errorf("x^9=0.5 root = %v", root)
	}
}

func TestBrentRootEndpointsAndValidation(t *testing.T) {
	f := func(x float64) float64 { return x - 0.25 }
	r, err := BrentRoot(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || r != 0 {
		t.Errorf("root at lo: %v, %v", r, err)
	}
	r, err = BrentRoot(func(x float64) float64 { return x - 1 }, 0, 1, 1e-12)
	if err != nil || r != 1 {
		t.Errorf("root at hi: %v, %v", r, err)
	}
	if _, err := BrentRoot(nil, 0, 1, 1e-6); err == nil {
		t.Error("nil function: expected error")
	}
	if _, err := BrentRoot(f, 1, 0, 1e-6); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := BrentRoot(f, 0.5, 1, 1e-6); err == nil {
		t.Error("same-sign endpoints: expected error")
	}
	if _, err := BrentRoot(f, 0, 1, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
}

func TestBrentMatchesBisectProperty(t *testing.T) {
	f := func(cRaw uint8) bool {
		c := 0.05 + 0.9*float64(cRaw)/255
		obj := func(x float64) float64 { return x*x*x - c }
		b1, err1 := Bisect(obj, 0, 1, 1e-12)
		b2, err2 := BrentRoot(obj, 0, 1, 1e-12)
		return err1 == nil && err2 == nil && math.Abs(b1-b2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
