package repro

// Benchmarks for the exact-evaluation backend, tracked in the
// BENCH_sim.json perf trajectory (pre-exact vs post-exact snapshots) and
// gated by `make bench-check`. All three pin the n = 10, δ = n/3 workload
// the ISSUE targets: the general threshold vector (Theorem 5.1), its
// heterogeneous generalization, and the heterogeneous oblivious sum.

import (
	"testing"

	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
)

// exactBenchN is the player count of the tracked exact workloads.
const exactBenchN = 10

func exactBenchThresholds() []float64 {
	ths := make([]float64, exactBenchN)
	for i := range ths {
		ths[i] = 0.4 + 0.03*float64(i)
	}
	return ths
}

func exactBenchPi() []float64 {
	pi := make([]float64, exactBenchN)
	for i := range pi {
		pi[i] = 0.5 + 0.05*float64(i)
	}
	return pi
}

func exactBenchAlphas() []float64 {
	alphas := make([]float64, exactBenchN)
	for i := range alphas {
		alphas[i] = 0.3 + 0.04*float64(i)
	}
	return alphas
}

// BenchmarkExactNonoblivious times the exact Theorem 5.1 evaluation of a
// general 10-player threshold vector — the engine Exact backend's hot
// path for threshold rules on homogeneous instances.
func BenchmarkExactNonoblivious(b *testing.B) {
	ths := exactBenchThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nonoblivious.WinningProbability(ths, float64(exactBenchN)/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactHetero times the heterogeneous Theorem 5.1
// generalization (conditional Lemma 2.4/2.7 subset sums) at n = 10.
func BenchmarkExactHetero(b *testing.B) {
	ths := exactBenchThresholds()
	pi := exactBenchPi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nonoblivious.WinningProbabilityPi(ths, pi, float64(exactBenchN)/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactObliviousHetero times the heterogeneous Theorem 4.1
// generalization (per-subset Lemma 2.4 CDF products) at n = 10.
func BenchmarkExactObliviousHetero(b *testing.B) {
	alphas := exactBenchAlphas()
	pi := exactBenchPi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oblivious.WinningProbabilityPi(alphas, pi, float64(exactBenchN)/3); err != nil {
			b.Fatal(err)
		}
	}
}
