package repro

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md), plus micro-benchmarks for the
// formula kernels. Each experiment benchmark regenerates its artifact
// end-to-end, so `go test -bench .` both times the pipeline and re-derives
// every reported number; the b.Log output of a single run records the
// headline values.

import (
	"io"
	"math/big"
	"math/rand/v2"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/obs"
	"repro/internal/qrand"
	"repro/internal/response"
	"repro/internal/sim"
)

// BenchmarkFigure1 regenerates Figure 1 (non-oblivious threshold sweep,
// n = 3, 4, 5, δ = n/3).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1(harness.Params{Points: 201})
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 3 {
			b.Fatalf("unexpected series count %d", len(fig.Series))
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (oblivious coin sweep, n = 3, 4,
// 5, δ = n/3).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure2(harness.Params{Points: 201})
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 3 {
			b.Fatalf("unexpected series count %d", len(fig.Series))
		}
	}
}

// BenchmarkFigure3Crossover regenerates the F3 extension figure (algorithm
// classes vs capacity at n = 4).
func BenchmarkFigure3Crossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure3(4, harness.Params{Points: 25})
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 3 {
			b.Fatalf("unexpected series count %d", len(fig.Series))
		}
	}
}

// BenchmarkTable5ValueOfInformation regenerates the T5 extension table
// (PY91 communication ladder, simulated + tuned).
func BenchmarkTable5ValueOfInformation(b *testing.B) {
	p := harness.Params{Sim: sim.Config{Trials: 30_000, Seed: 1}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableValueOfInformation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6BeyondThresholds regenerates the T6 extension table
// (two-interval rule search at grid 256).
func BenchmarkTable6BeyondThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableBeyondThresholds(256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7Asymptotics regenerates the T7 extension table (scaling
// with n at δ = n/3).
func BenchmarkTable7Asymptotics(b *testing.B) {
	p := harness.Params{Sim: sim.Config{Trials: 20_000, Seed: 1}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableAsymptotics([]int{2, 4, 8, 12, 16, 20, 24}, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Oblivious regenerates T1 (Theorem 4.3 optima for
// n = 2..10).
func BenchmarkTable1Oblivious(b *testing.B) {
	ns := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableOblivious(ns, harness.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2CaseN3 regenerates T2 (Section 5.2.1: exact piecewise
// polynomial, optimality condition and optimum for n=3, δ=1).
func BenchmarkTable2CaseN3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableCaseN3(); err != nil {
			b.Fatal(err)
		}
	}
	res, err := nonoblivious.OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("T2: β* = %.9f, P* = %.9f", res.BetaFloat, res.WinProbabilityFloat)
}

// BenchmarkTable3CaseN4 regenerates T3 (Section 5.2.2: n=4, δ=4/3).
func BenchmarkTable3CaseN4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableCaseN4(); err != nil {
			b.Fatal(err)
		}
	}
	res, err := nonoblivious.OptimalSymmetric(4, big.NewRat(4, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("T3: β* = %.9f, P* = %.9f", res.BetaFloat, res.WinProbabilityFloat)
}

// BenchmarkTable4Tradeoff regenerates T4 (knowledge/uniformity trade-off,
// simulated feasibility column included).
func BenchmarkTable4Tradeoff(b *testing.B) {
	p := harness.Params{Sim: sim.Config{Trials: 100_000, Seed: 1}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableTradeoff([]int{2, 3, 4, 5, 6}, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidationSweep regenerates V1 (every formula vs Monte-Carlo).
func BenchmarkValidationSweep(b *testing.B) {
	p := harness.Params{Sim: sim.Config{Trials: 100_000, Seed: 1}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.TableValidation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- kernel micro-benchmarks ----

// BenchmarkIrwinHallCDF times the Corollary 2.6 kernel (m = 10).
func BenchmarkIrwinHallCDF(b *testing.B) {
	ih, err := dist.NewIrwinHall(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ih.CDF(4.2)
	}
}

// BenchmarkUniformSumCDF times the Lemma 2.4 subset kernel (m = 12,
// 4096 subsets per call).
func BenchmarkUniformSumCDF(b *testing.B) {
	widths := make([]float64, 12)
	for i := range widths {
		widths[i] = 0.3 + 0.05*float64(i)
	}
	u, err := dist.NewUniformSum(widths)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.CDF(2.5)
	}
}

// BenchmarkObliviousWinProbability times the Theorem 4.1 evaluation for
// n = 20 (Poisson-binomial DP path).
func BenchmarkObliviousWinProbability(b *testing.B) {
	alphas := make([]float64, 20)
	for i := range alphas {
		alphas[i] = 0.3 + 0.02*float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oblivious.WinningProbability(alphas, 20.0/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdWinProbabilityGeneral times the Theorem 5.1 evaluation
// for a general 10-player threshold vector (Θ(3^n) subset path).
func BenchmarkThresholdWinProbabilityGeneral(b *testing.B) {
	ths := make([]float64, 10)
	for i := range ths {
		ths[i] = 0.4 + 0.03*float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nonoblivious.WinningProbability(ths, 10.0/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdWinProbabilitySymmetric times the O(n²) symmetric fast
// path at n = 20.
func BenchmarkThresholdWinProbabilitySymmetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := nonoblivious.SymmetricWinningProbability(20, 20.0/3, 0.63); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicDerivation times the full exact Section 5.2 pipeline
// (piecewise polynomial + Sturm optimum) at n = 6, δ = 2.
func BenchmarkSymbolicDerivation(b *testing.B) {
	delta := big.NewRat(2, 1)
	for i := 0; i < b.N; i++ {
		if _, err := nonoblivious.OptimalSymmetric(6, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResponseGridOracle times the grid-convolution winning
// probability of a band rule at n = 4, grid 1024.
func BenchmarkResponseGridOracle(b *testing.B) {
	ev, err := response.NewEvaluator(4, 4.0/3, 1024)
	if err != nil {
		b.Fatal(err)
	}
	band, err := response.NewIntervalSet([]response.Interval{{Lo: 0.327, Hi: 0.742}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.WinProbability(band); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResponseExactRational times the exact rational interval-set
// evaluation of the same band rule.
func BenchmarkResponseExactRational(b *testing.B) {
	band, err := response.NewRatIntervalSet([]response.RatInterval{
		{Lo: big.NewRat(327, 1000), Hi: big.NewRat(742, 1000)},
	})
	if err != nil {
		b.Fatal(err)
	}
	capacity := big.NewRat(4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := response.ExactWinProbability(4, capacity, band); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResponseVector times the asymmetric per-player interval
// evaluation at n = 6.
func BenchmarkResponseVector(b *testing.B) {
	sets := make([]response.IntervalSet, 6)
	for i := range sets {
		lo := 0.2 + 0.05*float64(i)
		s, err := response.NewIntervalSet([]response.Interval{{Lo: lo, Hi: lo + 0.4}})
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := response.WinProbabilityVector(sets, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneBitBroadcast times the exact evaluation of the one-bit
// communication protocol at n = 5.
func BenchmarkOneBitBroadcast(b *testing.B) {
	p := comm.OneBitBroadcast{N: 5, Cut: 0.55, SenderTheta: 0.55, BetaLow: 0.55, BetaHigh: 1}
	for i := 0; i < b.N; i++ {
		if _, err := p.WinProbability(5.0 / 3); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- observability overhead ----

// The three benchmarks below isolate what the telemetry layer costs the
// simulate hot loop. Baseline hand-rolls the pre-batching per-trial loop
// (sample, play, count — no obs branch anywhere); Instrumented runs the
// production sim.WinProbability with a nil observer, which since the
// batched kernel landed runs well *under* Baseline (it skips the
// per-trial allocations and interface dispatch Baseline still pays);
// Observed turns the full telemetry on (spans, counters, convergence
// checkpoints into a discarded sink) to document the cost of opting in —
// the contract is that Observed stays within a few percent of
// Instrumented, since win flags are replayed per trial from the batch
// buffer rather than re-simulated. All three use one worker and identical
// PCG streams so ns/op is comparable.

const obsBenchTrials = 100_000

// obsBenchWins defeats dead-code elimination of the baseline loop.
var obsBenchWins int64

// obsBenchSystem builds the n=3, δ=1 symmetric-threshold system at the
// paper's optimum, the same workload as BenchmarkSimulation.
func obsBenchSystem(b *testing.B) *model.System {
	b.Helper()
	rule, err := model.NewThresholdRule(0.622)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := model.UniformSystem(3, rule, 1)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkWinProbabilityBaseline replicates the engine's single-worker
// hot loop with no observability code in scope at all.
func BenchmarkWinProbabilityBaseline(b *testing.B) {
	sys := obsBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Same SplitMix stream separation as Config.workerSource(0).
		s := uint64(i+1) + 0x9e3779b97f4a7c15
		s ^= s >> 30
		s *= 0xbf58476d1ce4e5b9
		rng := rand.New(rand.NewPCG(s, s^0x94d049bb133111eb))
		var wins int64
		for t := 0; t < obsBenchTrials; t++ {
			inputs, err := sys.SampleInputs(rng)
			if err != nil {
				b.Fatal(err)
			}
			out, err := sys.Play(inputs, rng)
			if err != nil {
				b.Fatal(err)
			}
			if out.Win {
				wins++
			}
		}
		obsBenchWins = wins
	}
}

// BenchmarkWinProbabilityInstrumented runs the production engine with a
// nil observer — the default for every caller that does not pass -obs.
// Compare against BenchmarkWinProbabilityBaseline to see what the batched
// kernel buys over the per-trial loop on the same workload.
func BenchmarkWinProbabilityInstrumented(b *testing.B) {
	sys := obsBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Trials: obsBenchTrials, Workers: 1, Seed: uint64(i + 1)}
		if _, err := sim.WinProbability(sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWinProbabilityObserved times the same run with telemetry fully
// on (registry + JSONL sink into io.Discard), documenting what -obs costs.
func BenchmarkWinProbabilityObserved(b *testing.B) {
	sys := obsBenchSystem(b)
	o := obs.New(obs.NewRegistry(), obs.NewSink(io.Discard))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Trials: obsBenchTrials, Workers: 1, Seed: uint64(i + 1), Obs: o}
		if _, err := sim.WinProbability(sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation times the Monte-Carlo engine at 100k rounds of the
// n=3 optimum.
func BenchmarkSimulation(b *testing.B) {
	inst, err := core.NewInstance(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	beta := 0.622
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.SimulateThreshold(beta, sim.Config{Trials: 100_000, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- batch kernel ----

// noBatchRule hides the BatchRule implementation of a rule, forcing
// sim.WinProbability onto the per-trial fallback path.
type noBatchRule struct{ r model.LocalRule }

func (nb noBatchRule) Decide(x float64, rng *rand.Rand) (model.Bin, error) {
	return nb.r.Decide(x, rng)
}

// BenchmarkBatchKernel times the batch kernel's fast pseudo-random entry
// (PlaySrc over the worker PCG, the path sim.WinProbability runs) — the
// allocation-free inner loop of the Monte-Carlo engine — in trials/op.
func BenchmarkBatchKernel(b *testing.B) {
	sys := obsBenchSystem(b)
	k, ok := model.NewBatchKernel(sys)
	if !ok {
		b.Fatal("threshold system should be batchable")
	}
	sc := model.GetBatchScratch()
	defer sc.Release()
	src := rand.NewPCG(1, 2)
	const batch = 256
	k.PlaySrc(sc, src, batch) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		k.PlaySrc(sc, src, batch)
	}
}

// BenchmarkBatchKernelQMC times the quasi-Monte-Carlo entry on the same
// system: Sobol lane fills instead of PCG draws, in trials/op.
func BenchmarkBatchKernelQMC(b *testing.B) {
	sys := obsBenchSystem(b)
	k, ok := model.NewBatchKernel(sys)
	if !ok {
		b.Fatal("threshold system should be batchable")
	}
	seq, err := qrand.New(k.Dims(), 1)
	if err != nil {
		b.Fatal(err)
	}
	sc := model.GetBatchScratch()
	defer sc.Release()
	const batch = 256
	k.PlayQMC(sc, seq, 0, batch) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		k.PlayQMC(sc, seq, uint64(i), batch)
	}
}

// BenchmarkWinProbabilityFallback times the per-trial fallback path on the
// BenchmarkSimulation workload (rules wrapped to hide BatchRule), keeping
// the cost of non-batchable rules visible next to the batched numbers.
func BenchmarkWinProbabilityFallback(b *testing.B) {
	rule, err := model.NewThresholdRule(0.622)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := model.NewSystem([]model.LocalRule{
		noBatchRule{rule}, noBatchRule{rule}, noBatchRule{rule},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := model.NewBatchKernel(sys); ok {
		b.Fatal("wrapped system must not be batchable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Trials: obsBenchTrials, Workers: 1, Seed: uint64(i + 1)}
		if _, err := sim.WinProbability(sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
