// Uniformity vs knowledge: the paper's central trade-off, demonstrated.
//
// An algorithm family is "uniform" when one fixed rule is optimal for
// every fleet size n. The paper proves the oblivious family is uniform
// (α = 1/2 always, Theorem 4.3) while the input-aware threshold family is
// not: the optimal cutoff β* moves with n (Section 5.2). This example
// derives β* exactly for a range of fleet sizes and shows what a deployer
// loses by hard-coding one fleet's optimum into another fleet.
//
// Run with: go run ./examples/uniformity
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uniformity: ")

	fmt.Println("optimal parameters per fleet size (capacity δ = n/3):")
	fmt.Printf("%-4s  %-22s  %-22s\n", "n", "oblivious α* (uniform)", "threshold β* (drifts!)")

	type row struct {
		n    int
		beta float64
	}
	var rows []row
	for n := 2; n <= 8; n++ {
		delta := big.NewRat(int64(n), 3)
		res, err := nonoblivious.OptimalSymmetric(n, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d  %-22s  %.6f\n", n, "0.500000", res.BetaFloat)
		rows = append(rows, row{n, res.BetaFloat})
	}

	// The cost of pretending the threshold family were uniform: deploy
	// the n=3 optimum everywhere.
	n3beta := rows[1].beta // n = 3
	fmt.Printf("\ncost of hard-coding the n=3 cutoff β=%.4f on other fleets:\n", n3beta)
	fmt.Printf("%-4s  %-12s  %-12s  %-10s\n", "n", "P(β*_n)", "P(β*_3)", "loss")
	for _, r := range rows {
		delta := float64(r.n) / 3
		pOpt, err := nonoblivious.SymmetricWinningProbability(r.n, delta, r.beta)
		if err != nil {
			log.Fatal(err)
		}
		pFixed, err := nonoblivious.SymmetricWinningProbability(r.n, delta, n3beta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d  %.6f      %.6f      %+.6f\n", r.n, pOpt, pFixed, pFixed-pOpt)
	}

	// The oblivious family pays no such penalty — but starts lower.
	fmt.Println("\nthe oblivious coin never needs retuning, but pays for its blindness:")
	fmt.Printf("%-4s  %-14s  %-14s\n", "n", "oblivious(1/2)", "threshold β*_n")
	for _, r := range rows {
		delta := float64(r.n) / 3
		obl, err := oblivious.Optimal(r.n, delta)
		if err != nil {
			log.Fatal(err)
		}
		pOpt, err := nonoblivious.SymmetricWinningProbability(r.n, delta, r.beta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d  %.6f        %.6f\n", r.n, obl.WinProbability, pOpt)
	}
	fmt.Println("\nKnowledge buys probability; uniformity is what it costs (and at n=4, δ=4/3")
	fmt.Println("the coin even wins — see EXPERIMENTS.md for that reproduction finding).")
}
