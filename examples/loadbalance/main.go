// Load balancing without coordination: a fleet of edge nodes must each
// route a job of random size to one of two regional servers, with no
// control plane and no gossip — the exact setting the paper models.
//
// This example simulates a day of traffic in 10-minute scheduling rounds
// and compares three deployable policies on overflow rate and peak load:
//
//   - coin:      route by a fair coin (optimal symmetric oblivious policy),
//   - naive:     route small jobs left, large jobs right, cut at 1/2,
//   - optimal:   the paper's certified optimal threshold for this fleet
//     size, computed from the exact piecewise polynomial.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadbalance: ")

	const fleet = 5 // edge nodes deciding simultaneously each round
	// Server capacity per round, in job-size units. The paper's scaling
	// δ = n/3 keeps the instance tight as the fleet grows.
	inst, err := core.PaperInstance(fleet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d edge nodes, two servers of capacity %.3f each, no communication\n\n",
		inst.N, inst.Delta)

	opt, err := inst.OptimalThreshold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified optimal size cutoff for this fleet: β* = %.4f (win rate %.4f)\n\n",
		opt.BetaFloat, opt.WinProbabilityFloat)

	policies := []struct {
		name string
		sys  func() (*model.System, error)
	}{
		{"coin (oblivious 1/2)", func() (*model.System, error) { return inst.ObliviousSystem(0.5) }},
		{"naive cutoff 0.50", func() (*model.System, error) { return inst.ThresholdSystem(0.5) }},
		{fmt.Sprintf("optimal cutoff %.3f", opt.BetaFloat), func() (*model.System, error) {
			return inst.ThresholdSystem(opt.BetaFloat)
		}},
	}

	const rounds = 144_000 // 1000 simulated days of 10-minute rounds
	fmt.Printf("%-24s  %-12s  %-12s  %-12s\n", "policy", "win rate", "overflow/day", "mean peak load")
	for i, pol := range policies {
		sys, err := pol.sys()
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{Trials: rounds, Seed: uint64(100 + i)}
		win, err := sim.WinProbability(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		peak, err := sim.LoadStats(sys, cfg, func(o model.Outcome) float64 {
			if o.Load0 > o.Load1 {
				return o.Load0
			}
			return o.Load1
		})
		if err != nil {
			log.Fatal(err)
		}
		overflowPerDay := (1 - win.P) * 144 // rounds per day
		fmt.Printf("%-24s  %.4f        %6.1f        %.4f\n",
			pol.name, win.P, overflowPerDay, peak.Mean())
	}

	fmt.Println("\nThe certified threshold cuts daily overflows relative to both baselines,")
	fmt.Println("with zero coordination traffic — the paper's \"value of information\" in practice.")
}
