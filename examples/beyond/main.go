// Beyond single thresholds: the paper's model (Section 3) allows a player
// to apply ANY function of its own input, yet the analysis of Section 5
// only searches single-threshold rules ("small inputs left, large inputs
// right"). Is that restriction harmless?
//
// This example uses the library's general-response machinery to answer it
// empirically. For n = 4, δ = 4/3 — the paper's own second case study — it
// evaluates the optimal single threshold, the oblivious coin, and then
// searches the two-interval family, discovering a MIDDLE-BAND rule
// ("medium inputs left, small and large inputs right") that beats both.
// The winning rule is wrapped as an engine Rule so the same value flows
// through both the exact oracle backend and an unbiased Monte-Carlo
// cross-check.
//
// Run with: go run ./examples/beyond
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nonoblivious"
	"repro/internal/response"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beyond: ")

	const n = 4
	capacity := big.NewRat(4, 3)
	inst, err := core.NewInstance(n, 4.0/3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d, δ=4/3 (the paper's Section 5.2.2 case)\n\n", n)

	eng := engine.New(engine.Config{Sim: sim.Config{Trials: 2_000_000, Seed: 404}})
	ei := inst.EngineInstance()

	// The paper's contenders.
	thr, err := nonoblivious.OptimalSymmetric(n, capacity)
	if err != nil {
		log.Fatal(err)
	}
	coin, err := eng.Evaluate(ei, engine.SymmetricOblivious{A: 0.5}, engine.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal single threshold (paper §5.2.2): β* = %.4f  P = %.6f\n",
		thr.BetaFloat, thr.WinProbabilityFloat)
	fmt.Printf("oblivious fair coin (paper Thm 4.3):              P = %.6f\n\n", coin.P)

	// Search the two-interval family with the convolution oracle.
	ev, err := response.NewEvaluator(n, 4.0/3, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("searching two-interval decision rules (grid-convolution oracle)...")
	best, err := ev.OptimizeTwoInterval()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best rule found: bin 0 when x ∈ %s,  P ≈ %.6f\n\n", best.Set, best.WinProbability)

	// Verify by simulation: the oracle is O(1/grid²)-approximate, the
	// simulator is unbiased. The same IntervalRule value drives both
	// backends — only the backend argument changes.
	band := engine.IntervalRule{Set: best.Set, Grid: 1024}
	res, err := eng.Evaluate(ei, band, engine.MonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation check: P = %.6f ± %.6f over %d rounds\n\n", res.P, res.StdErr, res.Sim.Trials)

	switch {
	case res.P > coin.P && res.P > thr.WinProbabilityFloat:
		fmt.Println("=> the middle-band rule beats BOTH of the paper's algorithm classes:")
		fmt.Println("   single-threshold rules are not optimal in the full Section 3 model.")
		fmt.Println("   Intuition: sending mid-sized inputs to one bin concentrates that bin's")
		fmt.Println("   load near its mean, while extremes pack efficiently in the other.")
	default:
		fmt.Println("=> no improvement found over the paper's classes on this instance.")
	}
	fmt.Println("\nFor n=3, δ=1 the same search collapses back to the single threshold 0.622 —")
	fmt.Println("the paper's restriction is lossless there. See EXPERIMENTS.md (T6).")
}
