// Capacity planning: how much bin capacity δ must be provisioned so that a
// fleet of n uncoordinated deciders overflows at most a target fraction of
// rounds?
//
// The paper's framework answers this exactly: for each candidate δ we
// derive the certified optimal threshold and its winning probability from
// the exact piecewise polynomial, then pick the smallest δ whose optimal
// policy meets the service-level objective. The oblivious-coin column —
// what the fleet achieves without even looking at its own load — is
// evaluated through one sharded engine sweep, and the omniscient column
// shows where the no-communication tax sits relative to full coordination.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/engine"
	"repro/internal/nonoblivious"
	"repro/internal/problem"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	const n = 4
	const targetWin = 0.90 // at most 10% of rounds may overflow

	fmt.Printf("fleet size n=%d, target win rate %.0f%%\n\n", n, targetWin*100)
	fmt.Printf("%-8s  %-10s  %-12s  %-10s  %-14s\n", "δ", "β*", "P*(win)", "coin", "omniscient")

	// Sweep capacities on a 1/12 grid (exact rationals keep the symbolic
	// pipeline certified).
	var deltas []*big.Rat
	for num := int64(12); num <= 36; num += 2 { // δ from 1.0 to 3.0
		deltas = append(deltas, big.NewRat(num, 12))
	}

	// The oblivious fair coin across the whole grid: one engine sweep,
	// sharded over workers, every point memoized.
	eng := engine.New(engine.Config{})
	points := make([]engine.Point, len(deltas))
	for i, delta := range deltas {
		df, _ := delta.Float64()
		points[i] = engine.Point{
			Instance: engine.Instance{N: n, Delta: df},
			Rule:     engine.SymmetricOblivious{A: 0.5},
		}
	}
	coins, err := eng.Sweep(points, engine.SweepOptions{Backend: engine.Exact})
	if err != nil {
		log.Fatal(err)
	}

	var smallest *big.Rat
	for i, delta := range deltas {
		res, err := nonoblivious.OptimalSymmetric(n, delta)
		if err != nil {
			log.Fatal(err)
		}
		df, _ := delta.Float64()
		feas, err := sim.FeasibilityProbability(problem.Instance{N: n, Delta: df}, sim.Config{Trials: 200_000, Seed: uint64(12 + 2*i)})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.WinProbabilityFloat >= targetWin && smallest == nil {
			smallest = delta
			marker = "  <- smallest δ meeting the SLO"
		}
		fmt.Printf("%-8s  %.6f  %.6f      %.6f  %.6f%s\n",
			delta.RatString(), res.BetaFloat, res.WinProbabilityFloat, coins[i].P, feas.P, marker)
	}
	if smallest == nil {
		fmt.Println("\nno capacity in the sweep meets the target; provision more than 3.0")
		return
	}
	sf, _ := smallest.Float64()
	fmt.Printf("\nprovisioning answer: δ = %s (%.3f) per bin meets the %.0f%% SLO with zero coordination.\n",
		smallest.RatString(), sf, targetWin*100)
	fmt.Println("The omniscient column shows how much capacity a coordinated system could save —")
	fmt.Println("the gap between the columns is the price of removing all communication.")
}
