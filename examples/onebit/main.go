// What is one bit worth? The paper studies the zero-communication extreme
// of the Papadimitriou-Yannakakis value-of-information program and closes
// with the hope that "general communication patterns ... can all be
// treated in our combinatorial framework" (Section 6). This example does
// exactly that for the smallest possible pattern: before anyone commits,
// ONE player may announce a single bit about its own load.
//
// For each fleet size it derives the exact no-communication optimum, tunes
// the one-bit protocol (announcement cut, sender rule, bit-conditional
// thresholds) against the exact conditioned evaluator, and prices the bit
// in winning-probability points.
//
// Run with: go run ./examples/onebit
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/comm"
	"repro/internal/nonoblivious"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("onebit: ")

	fmt.Println("pricing one broadcast bit (capacity δ = n/3):")
	fmt.Printf("%-4s  %-12s  %-12s  %-10s  %s\n",
		"n", "no-comm P*", "one-bit P*", "bit worth", "tuned protocol")
	for n := 2; n <= 6; n++ {
		capacity := big.NewRat(int64(n), 3)
		noComm, err := nonoblivious.OptimalSymmetric(n, capacity)
		if err != nil {
			log.Fatal(err)
		}
		cf, _ := capacity.Float64()
		oneBit, err := comm.Optimize(n, cf, noComm.BetaFloat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d  %.6f      %.6f      %+.6f  cut=%.3f θ=%.3f β=%.3f/%.3f\n",
			n, noComm.WinProbabilityFloat, oneBit.WinProbability,
			oneBit.WinProbability-noComm.WinProbabilityFloat,
			oneBit.Protocol.Cut, oneBit.Protocol.SenderTheta,
			oneBit.Protocol.BetaLow, oneBit.Protocol.BetaHigh)
	}

	// The n=3 one-way variant has a closed form worth showing off.
	mirror := comm.OneBitToOne{N: 3, Cut: 0.5, SenderTheta: 0.5, BetaLow: 0, BetaHigh: 1, Beta: 1}
	p, err := mirror.WinProbability(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe \"mirror\" protocol (n=3, δ=1): the sender announces its half,")
	fmt.Println("one listener joins the OTHER bin, the third player always takes bin 0.")
	fmt.Printf("P = %.6f — exactly 5/8, versus 0.544631 with no communication.\n", p)
	fmt.Println("\nSee EXPERIMENTS.md (T5, T8) for the full value-of-information ladder.")
}
