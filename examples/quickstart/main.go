// Quickstart: the reproduction in one page.
//
// Three players each receive a uniform [0,1] load and must choose one of
// two unit-capacity bins without communicating. This example computes the
// exact winning probability of a few strategies, derives the certified
// optimal threshold (the paper's headline result), and cross-checks it by
// simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The paper's flagship instance: n = 3 players, bins of capacity δ = 1.
	inst, err := core.NewInstance(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d players, bin capacity δ=%g, no communication\n\n", inst.N, inst.Delta)

	// Strategy 1: flip a fair coin (the optimal symmetric oblivious
	// algorithm, Theorem 4.3).
	pCoin, err := inst.SymmetricObliviousWinProbability(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair-coin (oblivious) winning probability:   %.6f  (= 5/12)\n", pCoin)

	// Strategy 2: the naive threshold 1/2 — small loads to bin 0, large
	// to bin 1.
	pHalf, err := inst.SymmetricThresholdWinProbability(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold 1/2 (looks at input):              %.6f\n", pHalf)

	// Strategy 3: the certified optimum. The framework derives the exact
	// piecewise polynomial P(β) and maximizes it symbolically.
	opt, err := inst.OptimalThreshold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal threshold β* = %.6f:               %.6f  (paper: β*=1-√(1/7), P*≈0.545)\n\n",
		opt.BetaFloat, opt.WinProbabilityFloat)

	fmt.Println("exact winning-probability curve P(β):")
	for i := 0; i < opt.Curve.NumPieces(); i++ {
		piece, iv, err := opt.Curve.Piece(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  β ∈ [%s, %s]: P(β) = %s\n", iv.Lo.RatString(), iv.Hi.RatString(), piece)
	}
	fmt.Printf("  optimality condition at β*: %s = 0\n\n", opt.Condition)

	// Trust, but verify: play one million rounds.
	res, err := inst.SimulateThreshold(opt.BetaFloat, sim.Config{Trials: 1_000_000, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation of β*: P = %.6f ± %.6f over %d rounds (exact %.6f)\n",
		res.P, res.StdErr, res.Trials, opt.WinProbabilityFloat)

	// And the ceiling: what could an omniscient scheduler achieve?
	feas, err := inst.FeasibilityUpperBound(sim.Config{Trials: 1_000_000, Seed: 2027})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("omniscient upper bound (some assignment fits): %.6f  (exactly 3/4)\n", feas.P)
}
