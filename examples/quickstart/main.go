// Quickstart: the reproduction in one page.
//
// Three players each receive a uniform [0,1] load and must choose one of
// two unit-capacity bins without communicating. This example computes the
// exact winning probability of a few strategies through the unified
// evaluation engine (one Rule value, exact or Monte-Carlo backend),
// derives the certified optimal threshold (the paper's headline result),
// and cross-checks it by simulation — noting that the repeated evaluation
// comes straight from the engine's memoization cache.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The paper's flagship instance: n = 3 players with the δ = n/3
	// capacity scaling, i.e. bins of capacity 1.
	inst, err := core.PaperInstance(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d players, bin capacity δ=%g, no communication\n\n", inst.N, inst.Delta)

	// One engine evaluates every rule in this example. Its simulation
	// defaults apply whenever a rule runs on the Monte-Carlo backend.
	eng := engine.New(engine.Config{Sim: sim.Config{Trials: 1_000_000, Seed: 2026}})
	ei := inst.EngineInstance()

	// Strategy 1: flip a fair coin (the optimal symmetric oblivious
	// algorithm, Theorem 4.3).
	coin, err := eng.Evaluate(ei, engine.SymmetricOblivious{A: 0.5}, engine.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair-coin (oblivious) winning probability:   %.6f  (= 5/12)\n", coin.P)

	// Strategy 2: the naive threshold 1/2 — small loads to bin 0, large
	// to bin 1.
	half, err := eng.Evaluate(ei, engine.SymmetricThreshold{Beta: 0.5}, engine.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold 1/2 (looks at input):              %.6f\n", half.P)

	// Strategy 3: the certified optimum. The framework derives the exact
	// piecewise polynomial P(β) and maximizes it symbolically.
	opt, err := inst.OptimalThreshold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal threshold β* = %.6f:               %.6f  (paper: β*=1-√(1/7), P*≈0.545)\n\n",
		opt.BetaFloat, opt.WinProbabilityFloat)

	fmt.Println("exact winning-probability curve P(β):")
	for i := 0; i < opt.Curve.NumPieces(); i++ {
		piece, iv, err := opt.Curve.Piece(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  β ∈ [%s, %s]: P(β) = %s\n", iv.Lo.RatString(), iv.Hi.RatString(), piece)
	}
	fmt.Printf("  optimality condition at β*: %s = 0\n\n", opt.Condition)

	// Trust, but verify: the same Rule value, Monte-Carlo backend, one
	// million rounds.
	best := engine.SymmetricThreshold{Beta: opt.BetaFloat}
	res, err := eng.Evaluate(ei, best, engine.MonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation of β*: P = %.6f ± %.6f over %d rounds (exact %.6f)\n",
		res.P, res.StdErr, res.Sim.Trials, opt.WinProbabilityFloat)

	// Ask again and the engine answers from its memoization cache: same
	// instance, same rule fingerprint, same backend — no trials re-run.
	again, err := eng.Evaluate(ei, best, engine.MonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asked again:      P = %.6f (served from cache: %v)\n", again.P, again.Cached)

	// And the ceiling: what could an omniscient scheduler achieve?
	feas, err := inst.FeasibilityUpperBound(sim.Config{Trials: 1_000_000, Seed: 2027})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("omniscient upper bound (some assignment fits): %.6f  (exactly 3/4)\n", feas.P)
}
