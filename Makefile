# Canonical developer entry points. `make ci` is the tier-1 gate recorded
# in ROADMAP.md; the race target covers the concurrency-heavy packages
# (the Monte-Carlo engine, the metrics/span layer it feeds, and the
# memoizing evaluation engine with its sharded sweeps).

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/engine/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

ci: build vet test race
