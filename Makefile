# Canonical developer entry points. `make ci` is the tier-1 gate recorded
# in ROADMAP.md; the race target covers the concurrency-heavy packages
# (the Monte-Carlo engine with its batch kernel and scratch pools, the
# metrics/span layer it feeds, and the memoizing evaluation engine with
# its sharded sweeps).

GO ?= go

# Benchmark knobs: CI can run a short smoke-bench without timing out via
# `make bench BENCHTIME=10x PKG=.`, and `make bench-json LABEL=...`
# records a labeled snapshot in the BENCH_sim.json perf trajectory.
BENCHTIME ?= 1s
PKG ?= ./...
LABEL ?= dev

.PHONY: build test race vet bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/model/... ./internal/sim/... ./internal/obs/... ./internal/engine/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG)

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG) | $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_sim.json

ci: build vet test race
