# Canonical developer entry points. `make ci` is the tier-1 gate recorded
# in ROADMAP.md; the race target covers the concurrency-heavy packages
# (the Monte-Carlo engine with its batch kernel and scratch pools, the
# metrics/span layer it feeds, the memoizing evaluation engine with its
# sharded sweeps, and the exact evaluators with their sharded subset
# enumerations) plus the canonical problem package they all share.

GO ?= go

# Benchmark knobs: CI can run a short smoke-bench without timing out via
# `make bench BENCHTIME=10x PKG=.`, and `make bench-json LABEL=...`
# records a labeled snapshot in the BENCH_sim.json perf trajectory.
BENCHTIME ?= 1s
PKG ?= ./...
LABEL ?= dev

# Benchmark-regression gate: `make bench-check` compares labeled snapshot
# pairs already recorded in BENCH_sim.json and fails on >10% regressions
# in ns/op. Five pairs are gated: the batched Monte-Carlo kernel
# (BENCH_BASE→BENCH_HEAD), the exact backend's subset-enumeration
# benchmarks (BENCH_BASE2→BENCH_HEAD2, the pre-exact snapshot holds only
# the BenchmarkExact* series), the HTTP serving layer
# (BENCH_BASE3→BENCH_HEAD3 in BENCH_serve.json, recorded with
# `make bench-serve-json LABEL=...`), the engine-native optimizer
# (BENCH_BASE4→BENCH_HEAD4, snapshots hold only the BenchmarkOptimize*
# series), and the /v1/optimize endpoint (BENCH_BASE5→BENCH_HEAD5 in
# BENCH_serve.json). Override the pairs, or skip the gate entirely with
# BENCH_CHECK=0 (escape hatch for machines whose snapshots were recorded
# elsewhere); re-baseline with `make bench-json LABEL=<new-label>` /
# `make bench-serve-json LABEL=...`.
BENCH_BASE ?= pre-batch-baseline
BENCH_HEAD ?= post-batch
BENCH_BASE2 ?= pre-exact
BENCH_HEAD2 ?= post-exact
BENCH_BASE3 ?= serve-baseline
BENCH_HEAD3 ?= serve-head
BENCH_BASE4 ?= optimize-baseline
BENCH_HEAD4 ?= optimize-head
BENCH_BASE5 ?= serve-optimize-baseline
BENCH_HEAD5 ?= serve-optimize-head
BENCH_CHECK ?= 1

.PHONY: build test race vet bench bench-json bench-serve-json bench-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/problem/... ./internal/model/... ./internal/sim/... ./internal/obs/... ./internal/engine/... ./internal/optimize/... ./internal/serve/... ./internal/nonoblivious/... ./internal/oblivious/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG)

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG) | $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_sim.json

bench-serve-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./internal/serve/ | $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_serve.json

bench-check:
ifeq ($(BENCH_CHECK),0)
	@echo "bench-check: skipped (BENCH_CHECK=0)"
else
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE),$(BENCH_HEAD)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE2),$(BENCH_HEAD2)
	$(GO) run ./cmd/benchjson -out BENCH_serve.json -check $(BENCH_BASE3),$(BENCH_HEAD3)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE4),$(BENCH_HEAD4)
	$(GO) run ./cmd/benchjson -out BENCH_serve.json -check $(BENCH_BASE5),$(BENCH_HEAD5)
endif

ci: build vet test race bench-check
