# Canonical developer entry points. `make ci` is the tier-1 gate recorded
# in ROADMAP.md; the race target covers the concurrency-heavy packages
# (the Monte-Carlo engine with its batch kernel and scratch pools, the
# metrics/span layer it feeds, the memoizing evaluation engine with its
# sharded sweeps, and the exact evaluators with their sharded subset
# enumerations) plus the canonical problem package they all share.

GO ?= go

# Benchmark knobs: CI can run a short smoke-bench without timing out via
# `make bench BENCHTIME=10x PKG=.`, and `make bench-json LABEL=...`
# records a labeled snapshot in the BENCH_sim.json perf trajectory.
BENCHTIME ?= 1s
PKG ?= ./...
LABEL ?= dev

# Benchmark-regression gate: `make bench-check` compares labeled snapshot
# pairs already recorded in BENCH_sim.json and fails on >10% regressions
# in ns/op. The gated pairs: the batched Monte-Carlo kernel
# (BENCH_BASE→BENCH_HEAD), the exact backend's subset-enumeration
# benchmarks (BENCH_BASE2→BENCH_HEAD2, the pre-exact snapshot holds only
# the BenchmarkExact* series), the HTTP serving layer
# (BENCH_BASE3→BENCH_HEAD3 in BENCH_serve.json, recorded with
# `make bench-serve-json LABEL=...`), the engine-native optimizer
# (BENCH_BASE4→BENCH_HEAD4, snapshots hold only the BenchmarkOptimize*
# series), and the /v1/optimize endpoint (BENCH_BASE5→BENCH_HEAD5 in
# BENCH_serve.json). Override the pairs, or skip the gate entirely with
# BENCH_CHECK=0 (escape hatch for machines whose snapshots were recorded
# elsewhere); re-baseline with `make bench-json LABEL=<new-label>` /
# `make bench-serve-json LABEL=...`.
BENCH_BASE ?= pre-batch-baseline
BENCH_HEAD ?= post-batch
BENCH_BASE2 ?= pre-exact
BENCH_HEAD2 ?= post-exact
BENCH_BASE3 ?= serve-baseline
BENCH_HEAD3 ?= serve-head
BENCH_BASE4 ?= optimize-baseline
BENCH_HEAD4 ?= optimize-head
BENCH_BASE5 ?= serve-optimize-baseline
BENCH_HEAD5 ?= serve-optimize-head
# PR-8 lane-kernel pair: regression-gated as a whole, with the rewritten
# batch kernel additionally required to be ≥1.5x faster than the scalar
# baseline. Re-record the head with `make bench-kernel-json`.
BENCH_BASE6 ?= kernel-baseline
BENCH_HEAD6 ?= kernel-head
# QMC variance-reduction pair: the same trials-to-±1e-4 benchmarks
# recorded under the plain-MC sampler (qmc-baseline) and the QMC sampler
# (qmc-head); the gate requires ≥4x fewer effective ns per unit of
# precision. Re-record both with `make bench-qmc-json`.
BENCH_BASE7 ?= qmc-baseline
BENCH_HEAD7 ?= qmc-head
# Tiered-store warm-restart pair: the same restarted-server /v1/eval of a
# previously-computed exact result, recorded cold (empty cache directory,
# full recompute every iteration) and warm (seeded disk tier); the gate
# requires the warm restart to be ≥10x faster. Re-record both with
# `make bench-store-json`.
BENCH_BASE8 ?= store-baseline
BENCH_HEAD8 ?= store-head
# Table-reuse a-vector ascent pair: one coordinate-ascent pass at n=15,
# recorded with every probe rebuilding the exact tables
# (NOCOMM_ASCENT_BENCH=legacy) and with the per-search reusable evaluator
# delta-updating them; the gate requires the reused search ≥5x faster.
# Re-record both with `make bench-ascent-json`.
BENCH_BASE9 ?= ascent-baseline
BENCH_HEAD9 ?= ascent-head
BENCH_CHECK ?= 1

.PHONY: build test race vet bench bench-json bench-serve-json bench-kernel-json bench-qmc-json bench-store-json bench-ascent-json bench-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/problem/... ./internal/model/... ./internal/qrand/... ./internal/sim/... ./internal/obs/... ./internal/store/... ./internal/engine/... ./internal/optimize/... ./internal/serve/... ./internal/nonoblivious/... ./internal/oblivious/... ./internal/dist/... ./internal/combin/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG)

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) $(PKG) | $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_sim.json

bench-serve-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./internal/serve/ | $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_serve.json

# Re-record the lane-kernel head snapshot (the baseline was captured from
# the scalar kernel and is deliberately left untouched).
bench-kernel-json:
	$(GO) test -run '^$$' -bench '^(BenchmarkBatchKernel(QMC)?|BenchmarkSimulation|BenchmarkWinProbabilityBaseline)$$' -benchmem -benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson -label $(BENCH_HEAD6) -out BENCH_sim.json

# Record both sides of the variance-reduction pair: the trials-to-±1e-4
# ladder under the pseudo-random sampler, then under the QMC sampler.
# 1x benchtime: one ladder per sub-benchmark is the measurement.
bench-qmc-json:
	NOCOMM_PRECISION_SAMPLER=mc $(GO) test -run '^$$' -bench BenchmarkTrialsToPrecision -benchtime 1x ./internal/sim/ | $(GO) run ./cmd/benchjson -label $(BENCH_BASE7) -out BENCH_sim.json
	$(GO) test -run '^$$' -bench BenchmarkTrialsToPrecision -benchtime 1x ./internal/sim/ | $(GO) run ./cmd/benchjson -label $(BENCH_HEAD7) -out BENCH_sim.json

# Record both sides of the warm-restart pair: cold restarts (every
# iteration recomputes into an empty cache directory) then warm restarts
# (every iteration fills from the seeded disk tier).
bench-store-json:
	NOCOMM_STORE_BENCH=cold $(GO) test -run '^$$' -bench '^BenchmarkWarmRestartEval$$' -benchmem -benchtime=$(BENCHTIME) ./internal/serve/ | $(GO) run ./cmd/benchjson -label $(BENCH_BASE8) -out BENCH_serve.json
	$(GO) test -run '^$$' -bench '^BenchmarkWarmRestartEval$$' -benchmem -benchtime=$(BENCHTIME) ./internal/serve/ | $(GO) run ./cmd/benchjson -label $(BENCH_HEAD8) -out BENCH_serve.json

# Record both sides of the table-reuse ascent pair: the n=15 a-vector
# pass with per-probe table rebuilds (legacy), then with the reusable
# evaluator. 1x benchtime: one full ascent pass is the measurement.
bench-ascent-json:
	NOCOMM_ASCENT_BENCH=legacy $(GO) test -run '^$$' -bench '^BenchmarkOptimizeVectorN15$$' -benchtime 1x ./internal/engine/ | $(GO) run ./cmd/benchjson -label $(BENCH_BASE9) -out BENCH_sim.json
	$(GO) test -run '^$$' -bench '^BenchmarkOptimizeVectorN15$$' -benchtime 1x ./internal/engine/ | $(GO) run ./cmd/benchjson -label $(BENCH_HEAD9) -out BENCH_sim.json

bench-check:
ifeq ($(BENCH_CHECK),0)
	@echo "bench-check: skipped (BENCH_CHECK=0)"
else
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE),$(BENCH_HEAD)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE2),$(BENCH_HEAD2)
	$(GO) run ./cmd/benchjson -out BENCH_serve.json -check $(BENCH_BASE3),$(BENCH_HEAD3)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE4),$(BENCH_HEAD4)
	$(GO) run ./cmd/benchjson -out BENCH_serve.json -check $(BENCH_BASE5),$(BENCH_HEAD5)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE6),$(BENCH_HEAD6)
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE6),$(BENCH_HEAD6) -match '^BenchmarkBatchKernel$$' -improve 1.5
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE7),$(BENCH_HEAD7) -improve 4
	$(GO) run ./cmd/benchjson -out BENCH_serve.json -check $(BENCH_BASE8),$(BENCH_HEAD8) -improve 10
	$(GO) run ./cmd/benchjson -check $(BENCH_BASE9),$(BENCH_HEAD9) -match '^BenchmarkOptimizeVectorN15$$' -improve 5
endif

ci: build vet test race bench-check
