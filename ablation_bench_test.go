package repro

// Ablation benchmarks for the design choices called out in DESIGN.md:
// each pits the implementation the library ships against the naive
// alternative it replaced, so the speedups (and accuracy differences) are
// measurable rather than asserted.
//
//   - Gray-code subset walk vs. recomputing each subset sum from scratch
//     (the inclusion-exclusion kernels of Proposition 2.2 / Lemma 2.4);
//   - Poisson-binomial O(n²) collapse vs. the paper's literal 2^n sum
//     over decision vectors (Theorem 4.1);
//   - Neumaier-compensated vs. naive summation on the alternating
//     Irwin-Hall series (accuracy ablation, reported via b.Log).

import (
	"math"
	"testing"

	"repro/internal/combin"
	"repro/internal/dist"
	"repro/internal/oblivious"
)

// grayCDF is the shipped Lemma 2.4 kernel (incremental Gray-code sums).
func grayCDF(widths []float64, t float64) float64 {
	u, err := dist.NewUniformSum(widths)
	if err != nil {
		return math.NaN()
	}
	return u.CDF(t)
}

// naiveCDF recomputes each subset sum from its bitmask.
func naiveCDF(widths []float64, t float64) float64 {
	m := len(widths)
	var acc combin.Accumulator
	_ = combin.ForEachSubset(m, func(mask uint64) bool {
		s := combin.MaskSum(mask, widths)
		rem := t - s
		if rem <= 0 {
			return true
		}
		v := math.Pow(rem, float64(m))
		if combin.Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	norm := 1.0
	for i, w := range widths {
		norm *= w * float64(i+1)
	}
	return acc.Sum() / norm
}

func ablationWidths(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.3 + 0.04*float64(i)
	}
	return w
}

// BenchmarkAblationSubsetGray measures the shipped Gray-code kernel
// (m = 16, 65536 subsets).
func BenchmarkAblationSubsetGray(b *testing.B) {
	w := ablationWidths(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = grayCDF(w, 3.1)
	}
}

// BenchmarkAblationSubsetNaive measures the per-subset recomputation it
// replaced.
func BenchmarkAblationSubsetNaive(b *testing.B) {
	w := ablationWidths(16)
	// Correctness guard: the two kernels must agree.
	if d := math.Abs(grayCDF(w, 3.1) - naiveCDF(w, 3.1)); d > 1e-10 {
		b.Fatalf("kernels disagree by %v", d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = naiveCDF(w, 3.1)
	}
}

// theorem41Enumerated is the paper's literal Theorem 4.1: a sum over all
// 2^n decision vectors.
func theorem41Enumerated(alphas []float64, capacity float64) (float64, error) {
	n := len(alphas)
	cdf := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		v, err := dist.IrwinHallCDF(k, capacity)
		if err != nil {
			return 0, err
		}
		cdf[k] = v
	}
	var acc combin.Accumulator
	err := combin.ForEachSubset(n, func(mask uint64) bool {
		k := combin.Popcount(mask) // players choosing bin 1
		prob := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				prob *= 1 - alphas[i]
			} else {
				prob *= alphas[i]
			}
		}
		acc.Add(cdf[k] * cdf[n-k] * prob)
		return true
	})
	if err != nil {
		return 0, err
	}
	return acc.Sum(), nil
}

func ablationAlphas(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = 0.3 + 0.02*float64(i)
	}
	return a
}

// BenchmarkAblationTheorem41DP measures the shipped O(n²)
// Poisson-binomial collapse at n = 20.
func BenchmarkAblationTheorem41DP(b *testing.B) {
	alphas := ablationAlphas(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oblivious.WinningProbability(alphas, 20.0/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTheorem41Enumerated measures the literal 2^n sum at the
// same n = 20 (about one million decision vectors per call).
func BenchmarkAblationTheorem41Enumerated(b *testing.B) {
	alphas := ablationAlphas(20)
	dp, err := oblivious.WinningProbability(alphas, 20.0/3)
	if err != nil {
		b.Fatal(err)
	}
	enum, err := theorem41Enumerated(alphas, 20.0/3)
	if err != nil {
		b.Fatal(err)
	}
	if math.Abs(dp-enum) > 1e-10 {
		b.Fatalf("DP %v vs enumeration %v disagree", dp, enum)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := theorem41Enumerated(alphas, 20.0/3); err != nil {
			b.Fatal(err)
		}
	}
}

// irwinHallNaive evaluates Corollary 2.6 with uncompensated summation.
func irwinHallNaive(m int, t float64) float64 {
	row, err := combin.PascalRow(m)
	if err != nil {
		return math.NaN()
	}
	var sum float64
	for i := 0; i <= m; i++ {
		if float64(i) >= t {
			continue
		}
		v := row[i] * math.Pow(t-float64(i), float64(m))
		if i%2 == 1 {
			sum -= v
		} else {
			sum += v
		}
	}
	f, err := combin.FactorialFloat(m)
	if err != nil {
		return math.NaN()
	}
	return sum / f
}

// BenchmarkAblationCompensatedSum reports, via b.Log, the accuracy gained
// by Neumaier compensation on the alternating Irwin-Hall series at the
// stability edge (m = 25), measured against the exact rational value, and
// times the compensated kernel.
func BenchmarkAblationCompensatedSum(b *testing.B) {
	const m = 25
	tPoint := float64(m) / 2 // exact value 1/2 by symmetry
	ih, err := dist.NewIrwinHall(m)
	if err != nil {
		b.Fatal(err)
	}
	compErr := math.Abs(ih.CDF(tPoint) - 0.5)
	naiveErr := math.Abs(irwinHallNaive(m, tPoint) - 0.5)
	b.Logf("m=%d: |error| compensated %.3e vs naive %.3e", m, compErr, naiveErr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ih.CDF(tPoint)
	}
}

// BenchmarkAblationNaiveSum times the uncompensated kernel for
// comparison.
func BenchmarkAblationNaiveSum(b *testing.B) {
	const m = 25
	tPoint := float64(m) / 2
	for i := 0; i < b.N; i++ {
		_ = irwinHallNaive(m, tPoint)
	}
}
