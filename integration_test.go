package repro

// End-to-end integration tests: each test crosses several packages and
// asserts a headline property of the reproduction as a whole. They are the
// executable summary of EXPERIMENTS.md.

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/geometry"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/problem"
	"repro/internal/py91"
	"repro/internal/response"
	"repro/internal/sim"
)

// TestEndToEndPaperHeadlines re-derives every headline number of the paper
// through the public facade and checks them against the published values.
func TestEndToEndPaperHeadlines(t *testing.T) {
	inst, err := core.NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4.3 value at n=3: 5/12.
	obl, err := inst.OptimalOblivious()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obl.WinProbability-5.0/12) > 1e-14 {
		t.Errorf("oblivious optimum = %v, want 5/12", obl.WinProbability)
	}
	// Section 5.2.1: β* = 1-sqrt(1/7), P* ≈ 0.545.
	thr, err := inst.OptimalThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr.BetaFloat-(1-math.Sqrt(1.0/7))) > 1e-14 {
		t.Errorf("β* = %v", thr.BetaFloat)
	}
	if math.Abs(thr.WinProbabilityFloat-0.545) > 1e-3 {
		t.Errorf("P* = %v", thr.WinProbabilityFloat)
	}
	// Section 5.2.2: β* ≈ 0.678 at n=4, δ=4/3.
	inst4, err := core.PaperInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	thr4, err := inst4.OptimalThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr4.BetaFloat-0.678) > 0.005 {
		t.Errorf("n=4 β* = %v, want ≈ 0.678", thr4.BetaFloat)
	}
}

// TestEndToEndChainOfOracles checks one fixed quantity through every
// independent computational path the repository has: exact rational,
// float64 closed form, symbolic piecewise polynomial, grid convolution,
// and Monte-Carlo simulation.
func TestEndToEndChainOfOracles(t *testing.T) {
	const n = 3
	capacity := big.NewRat(1, 1)
	beta := big.NewRat(5, 8) // 0.625, near the optimum
	betaF := 0.625

	exact, err := nonoblivious.WinningProbabilityRat(
		[]*big.Rat{beta, beta, beta}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Float64()

	// Path 2: float closed form.
	closed, err := nonoblivious.SymmetricWinningProbability(n, 1, betaF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(closed-want) > 1e-12 {
		t.Errorf("closed form %v vs exact %v", closed, want)
	}
	// Path 3: symbolic piecewise polynomial.
	pw, err := nonoblivious.SymbolicSymmetric(n, capacity)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := pw.Eval(beta)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Cmp(exact) != 0 {
		t.Errorf("symbolic %v vs exact %v (should be identical rationals)", sym, exact)
	}
	// Path 4: grid convolution over the general-rule evaluator.
	ev, err := response.NewEvaluator(n, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	set, err := response.Threshold(betaF)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ev.WinProbability(set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conv-want) > 3e-4 {
		t.Errorf("convolution %v vs exact %v", conv, want)
	}
	// Path 5: Monte-Carlo.
	inst, err := core.NewInstance(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := inst.SimulateThreshold(betaF, sim.Config{Trials: 300000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.P-want) > 4*mc.StdErr {
		t.Errorf("simulation %v ± %v vs exact %v", mc.P, mc.StdErr, want)
	}
}

// TestEndToEndGeometryToProbability walks the paper's derivation chain:
// Proposition 2.2 volume → Lemma 2.4 CDF → Corollary 2.6 Irwin-Hall →
// Theorem 4.1 term, asserting exact consistency at each hand-off.
func TestEndToEndGeometryToProbability(t *testing.T) {
	// Volume of {x ∈ [0,1]³ : Σx ≤ 1} is 1/6 (Prop 2.2)...
	one := big.NewRat(1, 1)
	vol, err := geometry.VolumeRat(
		[]*big.Rat{one, one, one}, []*big.Rat{one, one, one})
	if err != nil {
		t.Fatal(err)
	}
	if vol.Cmp(big.NewRat(1, 6)) != 0 {
		t.Fatalf("Prop 2.2 volume = %v, want 1/6", vol)
	}
	// ... equals the Lemma 2.4 CDF at t=1 with unit widths ...
	cdf, err := dist.CDFRat([]*big.Rat{one, one, one}, one)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Cmp(vol) != 0 {
		t.Fatalf("Lemma 2.4 CDF = %v, want the Prop 2.2 volume %v", cdf, vol)
	}
	// ... equals Corollary 2.6 ...
	ih, err := dist.IrwinHallCDFRat(3, one)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Cmp(cdf) != 0 {
		t.Fatalf("Corollary 2.6 = %v, want %v", ih, cdf)
	}
	// ... and feeds the Theorem 4.1 term φ_1(0) = F_0·F_3 = 1/6.
	phi, err := oblivious.Phi(3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ihF, _ := ih.Float64()
	if math.Abs(phi-ihF) > 1e-15 {
		t.Fatalf("φ(0) = %v, want %v", phi, ihF)
	}
}

// TestEndToEndPY91Settled verifies that the PY91 baseline and the paper's
// machinery tell one consistent story: the conjectured protocol is the
// proven optimum and sits below the omniscient bound.
func TestEndToEndPY91Settled(t *testing.T) {
	proto := py91.ConjecturedOptimal()
	exact, err := proto.ExactWinProbability()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := nonoblivious.OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-opt.WinProbabilityFloat) > 1e-10 {
		t.Errorf("conjectured %v vs proven %v", exact, opt.WinProbabilityFloat)
	}
	feas, err := sim.FeasibilityProbability(problem.Instance{N: 3, Delta: 1}, sim.Config{Trials: 200000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !(exact < feas.P) {
		t.Errorf("no-communication optimum %v should sit below the omniscient bound %v", exact, feas.P)
	}
}

// TestEndToEndHeterogeneousInstance crosses the full heterogeneous stack
// on n=3, π=(1/2,1,1), δ=1: the exact subset-sum evaluators (engine
// Exact backend) and the widths-aware sampling kernel (Monte-Carlo
// backend) must agree within a 99% confidence interval for both rule
// classes, and shrinking a player's range must help the threshold
// algorithm (player 1's load shrinks stochastically).
func TestEndToEndHeterogeneousInstance(t *testing.T) {
	inst, err := core.NewInstancePi(3, 1, []float64{0.5, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Heterogeneous() {
		t.Fatal("instance should be heterogeneous")
	}
	cfg := sim.Config{Trials: 400_000, Seed: 29, Workers: 2}
	for _, r := range []engine.Rule{
		engine.SymmetricOblivious{A: 0.5},
		engine.SymmetricThreshold{Beta: 0.5},
		engine.Threshold{Thresholds: []float64{0.25, 0.5, 0.5}},
	} {
		exact, err := inst.Evaluate(r, engine.Exact)
		if err != nil {
			t.Fatalf("%s exact: %v", r.Name(), err)
		}
		mc, err := engine.Default().EvaluateWith(inst.EngineInstance(), r, engine.MonteCarlo, cfg)
		if err != nil {
			t.Fatalf("%s mc: %v", r.Name(), err)
		}
		if mc.StdErr <= 0 {
			t.Fatalf("%s: no standard error", r.Name())
		}
		// 99% CI: |exact - mc| <= 2.576 standard errors.
		if diff := math.Abs(exact.P - mc.P); diff > 2.576*mc.StdErr {
			t.Errorf("%s: exact %v vs mc %v ± %v disagree beyond the 99%% CI",
				r.Name(), exact.P, mc.P, mc.StdErr)
		}
	}
	// Shrinking π_1 can only reduce the total load, so the best threshold
	// value on the heterogeneous instance dominates the homogeneous one.
	hom, err := core.NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	homP, err := hom.SymmetricThresholdWinProbability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	hetP, err := inst.SymmetricThresholdWinProbability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(hetP > homP) {
		t.Errorf("heterogeneous threshold value %v should beat homogeneous %v", hetP, homP)
	}
}
